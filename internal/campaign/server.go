package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/telemetry"
	"repro/internal/teletrace"
)

// Config parameterizes a coordinator.
type Config struct {
	// JournalPath is the JSONL journal terminal cell results append to
	// (harness format). Empty disables durability: a crash loses
	// everything. With Resume set, existing records seed the result
	// cache at boot so a restarted coordinator picks up mid-campaign.
	JournalPath string
	Resume      bool

	// LeaseTTL is how long a worker may go without a heartbeat before
	// its lease is reaped. <=0 means 30s.
	LeaseTTL time.Duration
	// MaxAttempts is the per-cell lease budget before quarantine.
	// <=0 means 5.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the requeue backoff (exponential,
	// deterministic ±25% jitter). <=0 means 500ms / 15s.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// CacheSize bounds the in-memory result cache (FIFO eviction).
	// <=0 means unbounded.
	CacheSize int

	// ReadRate/ReadBurst rate-limit the read endpoints (/progress,
	// /metrics, campaign status, results CSV): requests per second and
	// bucket size. ReadRate <=0 disables limiting.
	ReadRate  float64
	ReadBurst int
	// ReadWidth bounds concurrent read handlers; ReadQueue bounds how
	// many more may wait for a slot before shedding with 503.
	// ReadWidth <=0 means 8; ReadQueue <0 means 16.
	ReadWidth int
	ReadQueue int
	// AggTTL is how long the /progress aggregate may be served from
	// cache (stale-but-fast). <=0 means 1s.
	AggTTL time.Duration

	// Metrics receives coordinator counters and absorbed worker
	// snapshots; nil allocates a private registry.
	Metrics *telemetry.Registry

	// Tracer enables distributed tracing: every submitted cell gets a
	// root span whose context rides the lease response's X-Trace-Context
	// header to workers, and worker-shipped spans are ingested into the
	// tracer's store (served by /traces). Nil disables tracing — every
	// span site degrades to a nil-handle branch.
	Tracer *teletrace.Tracer

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)

	// Now is the clock; nil means real time. Tests inject fakes so
	// lease expiry and backoff are deterministic.
	Now func() time.Time
}

// Server is the campaign coordinator: HTTP handlers over the lease
// queue, result cache, journal and degradation ladder. One mutex
// serializes all queue/cache state; handlers do no simulation work, so
// the critical sections are short.
type Server struct {
	cfg  Config
	now  func() time.Time
	logf func(string, ...any)

	mu        sync.Mutex
	q         *queue
	campaigns map[string]*Campaign
	order     []string // campaign IDs in submission order
	cache     *resultCache
	journal   *harness.Journal

	reg      *telemetry.Registry
	tracer   *teletrace.Tracer
	tstore   *teletrace.Store
	limiter  *limiter
	gate     *gate
	progress *memo
	traces   *memo

	cLeases      *telemetry.Counter
	cExpired     *telemetry.Counter
	cDone        *telemetry.Counter
	cRequeued    *telemetry.Counter
	cQuarantined *telemetry.Counter
	cCacheHits   *telemetry.Counter
	cEvicted     *telemetry.Counter
	cShed        *telemetry.Counter
	cSpans       *telemetry.Counter
	cProgressRef *telemetry.Counter
}

// NewServer builds a coordinator, replaying the journal (when
// configured for resume) into the result cache so previously completed
// cells are never re-simulated.
func NewServer(cfg Config) (*Server, error) {
	s := &Server{
		cfg:       cfg,
		q:         newQueue(cfg.LeaseTTL, cfg.MaxAttempts, cfg.BackoffBase, cfg.BackoffMax),
		campaigns: map[string]*Campaign{},
		cache:     newResultCache(cfg.CacheSize),
		reg:       cfg.Metrics,
	}
	s.now = cfg.Now
	if s.now == nil {
		s.now = func() time.Time { return time.Now() } //simlint:wallclock lease deadlines are genuine wall time
	}
	s.logf = cfg.Logf
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	queueLen := cfg.ReadQueue
	if queueLen == 0 {
		queueLen = 16
	}
	s.limiter = newLimiter(cfg.ReadRate, cfg.ReadBurst)
	s.gate = newGate(cfg.ReadWidth, queueLen, time.Second)
	s.progress = newMemo(cfg.AggTTL)
	s.traces = newMemo(cfg.AggTTL)
	s.tracer = cfg.Tracer
	s.tstore = s.tracer.Store()

	s.cLeases = s.reg.Counter("campaign_leases_granted_total", "leases handed to workers")
	s.cExpired = s.reg.Counter("campaign_leases_expired_total", "leases reaped after heartbeat loss")
	s.cDone = s.reg.Counter("campaign_cells_done_total", "cells reaching a terminal outcome")
	s.cRequeued = s.reg.Counter("campaign_cells_requeued_total", "cells sent back for another lease")
	s.cQuarantined = s.reg.Counter("campaign_cells_quarantined_total", "poison cells out of attempts")
	s.cCacheHits = s.reg.Counter("campaign_cache_hits_total", "cells served from the result cache")
	s.cEvicted = s.reg.Counter("campaign_cache_evictions_total", "cache entries evicted (FIFO bound)")
	s.cShed = s.reg.Counter("campaign_reads_shed_total", "read requests rejected by the degradation ladder")
	s.cSpans = s.reg.Counter("campaign_trace_spans_total", "worker spans ingested into the trace store")
	s.cProgressRef = s.reg.Counter("campaign_progress_refreshes_total", "/progress aggregate recomputations (cache misses)")

	if cfg.JournalPath != "" {
		if cfg.Resume {
			recs, warns, err := harness.ReadRecords(cfg.JournalPath)
			if err != nil {
				return nil, fmt.Errorf("campaign: resuming journal: %w", err)
			}
			for _, w := range warns {
				s.logf("campaign: journal warning: %s", w)
			}
			for name, rec := range recs {
				s.cache.put(name, rec)
			}
			if len(recs) > 0 {
				s.logf("campaign: resumed %d cell results from %s", len(recs), cfg.JournalPath)
			}
		}
		j, err := harness.OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("campaign: opening journal: %w", err)
		}
		s.journal = j
	}
	return s, nil
}

// Close releases the journal.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}

// Submit registers a campaign (idempotently) and returns its status.
// Cells with cached results complete instantly; the rest join the
// lease queue.
func (s *Server) Submit(sweep string, p experiments.Params) (StatusResponse, error) {
	def, ok := experiments.SweepByName(sweep)
	if !ok {
		return StatusResponse{}, fmt.Errorf("%w: %q", ErrUnknownSweep, sweep)
	}
	p = p.Normalize()
	id := CampaignID(sweep, p)

	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.campaigns[id]; ok {
		return s.statusLocked(c), nil
	}
	c := &Campaign{ID: id, Sweep: sweep, Params: p, def: def}
	cells := def.Cells(p)
	for i, cell := range cells {
		scheme := ""
		if def.Scheme != nil {
			scheme = def.Scheme(cell.ID)
		}
		k := cellKey(sweep, p, cell.ID, scheme, cell.Seed)
		j := &job{
			campaign: c,
			index:    i,
			cellID:   cell.ID,
			name:     cellName(sweep, cell.ID, k),
			key:      k,
			seed:     cell.Seed,
			state:    statePending,
		}
		if rec, hit := s.cache.get(j.name); hit {
			cp := rec
			j.rec = &cp
			j.state = stateDone
			j.cached = true
			s.cCacheHits.Inc()
			if rec.Metrics != nil {
				s.reg.Absorb(*rec.Metrics)
			}
		} else if s.tracer != nil {
			// The cell's root span: open from enqueue to terminal
			// outcome, parent of every claim/attempt span a worker
			// ships back under its trace.
			j.span = s.tracer.StartRoot("campaignd/cell")
			j.span.SetAttr("cell", j.fullID())
			j.span.SetAttr("name", j.name)
		}
		c.jobs = append(c.jobs, j)
		s.q.add(j)
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.progress.invalidate()
	s.logf("campaign: submitted %s (%s, %d cells, %d cached)", id, sweep, len(c.jobs), cachedCount(c))
	return s.statusLocked(c), nil
}

func cachedCount(c *Campaign) int {
	n := 0
	for _, j := range c.jobs {
		if j.cached {
			n++
		}
	}
	return n
}

// reapLocked expires dead leases, journaling quarantined cells as
// terminal deadline gaps. Callers hold s.mu.
func (s *Server) reapLocked(now time.Time) {
	requeued, quarantined := s.q.reap(now)
	for _, j := range requeued {
		s.cExpired.Inc()
		s.cRequeued.Inc()
		j.span.Eventf("lease-expired", "worker went silent, requeued (attempt %d/%d)", j.attempts, s.q.maxAttempts)
		s.logf("campaign: lease expired, requeued %s (attempt %d/%d)", j.fullID(), j.attempts, s.q.maxAttempts)
	}
	for _, j := range quarantined {
		s.cExpired.Inc()
		j.span.Eventf("lease-expired", "worker went silent on final attempt %d", j.attempts)
		rec := harness.Record{
			Kind:     harness.RecordKindCell,
			Cell:     j.name,
			Seed:     j.seed,
			Attempts: j.attempts,
			Class:    harness.ClassDeadline,
			Error:    fmt.Sprintf("campaign: quarantined after %d expired/failed attempts", j.attempts),
		}
		s.finishLocked(j, rec, true)
		s.logf("campaign: quarantined %s after %d attempts", j.fullID(), j.attempts)
	}
}

// ingestSpansLocked adds worker-shipped spans to the trace store. The
// store dedupes by (trace, span) ID, so a duplicated complete RPC that
// somehow carries a live lease cannot double-record a span. Callers
// hold s.mu.
func (s *Server) ingestSpansLocked(spans []teletrace.SpanData) {
	if s.tstore == nil || len(spans) == 0 {
		return
	}
	added := s.tstore.AddAll(spans)
	s.cSpans.Add(uint64(added))
	s.traces.invalidate()
}

// finishLocked journals and caches a job's terminal record. Callers
// hold s.mu.
func (s *Server) finishLocked(j *job, rec harness.Record, quarantined bool) {
	rec.Kind = harness.RecordKindCell
	rec.Cell = j.name // content-addressed name, not the worker's local ID
	if rec.TraceID == "" && j.span != nil {
		// Coordinator-authored records (reaper quarantines) and records
		// from workers running without a tracer still link to the
		// cell's trace.
		rec.TraceID = j.span.TraceID().String()
	}
	j.rec = &rec
	if quarantined {
		j.state = stateQuarantined
		s.cQuarantined.Inc()
		j.span.SetErrorString(rec.Error)
	} else {
		j.state = stateDone
		s.cDone.Inc()
		if rec.Class != harness.ClassOK {
			j.span.SetErrorString(rec.Error)
		}
	}
	j.span.SetAttr("class", string(rec.Class))
	j.span.End()
	s.cEvicted.Add(uint64(s.cache.put(j.name, rec)))
	if s.journal != nil {
		if err := s.journal.Append(rec); err != nil {
			s.logf("campaign: journal append failed for %s: %v", j.name, err)
		}
	}
	if rec.Metrics != nil {
		s.reg.Absorb(*rec.Metrics)
	}
	s.progress.invalidate()
}

// statusLocked summarizes a campaign. Callers hold s.mu.
func (s *Server) statusLocked(c *Campaign) StatusResponse {
	st := StatusResponse{ID: c.ID, Sweep: c.Sweep, Params: c.Params, Total: len(c.jobs)}
	for _, j := range c.jobs {
		switch j.state {
		case stateDone:
			st.Done++
			if j.cached {
				st.Cached++
			}
		case stateQuarantined:
			st.Quarantined++
		case stateLeased:
			st.Leased++
		case statePending:
			st.Pending++
		default:
			st.Pending++
		}
	}
	st.Complete = st.Done+st.Quarantined == st.Total
	return st
}

// resultsLocked aggregates a complete campaign into CSV bytes,
// byte-identical to the single-process renderer. Callers hold s.mu.
func (s *Server) resultsLocked(c *Campaign) ([]byte, error) {
	st := s.statusLocked(c)
	if !st.Complete {
		return nil, fmt.Errorf("%w: %d/%d cells terminal", ErrIncomplete, st.Done+st.Quarantined, st.Total)
	}
	if c.csv != nil {
		return c.csv, nil
	}
	rep := &harness.Report{Name: c.Sweep}
	for i, j := range c.jobs {
		rep.Outcomes = append(rep.Outcomes, j.rec.Outcome(i))
	}
	rows, err := c.def.Rows(c.Params, rep)
	if err != nil {
		return nil, fmt.Errorf("campaign: aggregating %s: %w", c.ID, err)
	}
	buf, err := EncodeCSV(rows)
	if err != nil {
		return nil, err
	}
	c.csv = buf
	return buf, nil
}

// --- wire types ---

// SubmitRequest is the POST /v1/campaigns body.
type SubmitRequest struct {
	Sweep  string             `json:"sweep"`
	Params experiments.Params `json:"params"`
}

// StatusResponse describes a campaign's progress.
type StatusResponse struct {
	ID          string             `json:"id"`
	Sweep       string             `json:"sweep"`
	Params      experiments.Params `json:"params"`
	Total       int                `json:"total"`
	Done        int                `json:"done"`
	Cached      int                `json:"cached"`
	Pending     int                `json:"pending"`
	Leased      int                `json:"leased"`
	Quarantined int                `json:"quarantined"`
	Complete    bool               `json:"complete"`
}

// LeaseRequest is the POST /v1/lease body.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse hands a worker one cell to run. The cell's trace
// context rides the X-Trace-Context response header, not the body —
// propagation metadata stays out of the payload schema.
type LeaseResponse struct {
	LeaseID   string             `json:"lease_id"`
	Campaign  string             `json:"campaign"`
	Sweep     string             `json:"sweep"`
	Params    experiments.Params `json:"params"`
	CellID    string             `json:"cell_id"`
	CellIndex int                `json:"cell_index"`
	Seed      int64              `json:"seed"`
	TTLMillis int64              `json:"ttl_ms"`

	// trace is the header-parsed context, populated by the worker's
	// acquire; zero when the coordinator runs untraced.
	trace teletrace.Context
}

// HeartbeatRequest is the POST /v1/heartbeat body.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// CompleteRequest is the POST /v1/complete body: the worker's terminal
// record for its leased cell, plus the spans its tracer collected
// while running it (empty when worker tracing is off).
type CompleteRequest struct {
	LeaseID string               `json:"lease_id"`
	Record  harness.Record       `json:"record"`
	Spans   []teletrace.SpanData `json:"spans,omitempty"`
}

// CompleteResponse reports what the coordinator did with the result.
type CompleteResponse struct {
	Status string `json:"status"` // done | requeued | quarantined
}

// ProgressResponse is the whole-coordinator aggregate served by
// GET /progress (possibly stale by up to Config.AggTTL).
type ProgressResponse struct {
	Campaigns []StatusResponse `json:"campaigns"`
	Cells     int              `json:"cells"`
	Done      int              `json:"done"`
	Cached    int              `json:"cached"`
	CacheLen  int              `json:"cache_len"`
	Stale     bool             `json:"stale,omitempty"`
}

// --- HTTP plumbing ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

// degrade wraps a read handler in the degradation ladder: token-bucket
// rate limiting (429 + Retry-After) then the bounded concurrency gate
// (503 + Retry-After when the wait queue overflows).
func (s *Server) degrade(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if ok, wait := s.limiter.allow(s.now()); !ok {
			s.cShed.Inc()
			retryAfter(w, wait)
			writeError(w, http.StatusTooManyRequests, ErrOverloaded)
			return
		}
		release, wait, err := s.gate.enter()
		if err != nil {
			s.cShed.Inc()
			retryAfter(w, wait)
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		defer release()
		h(w, r)
	}
}

// Handler returns the coordinator's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", s.handleComplete)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.degrade(s.handleStatus))
	mux.HandleFunc("GET /v1/campaigns/{id}/results.csv", s.degrade(s.handleResults))
	mux.HandleFunc("GET /v1/campaigns/{id}/cells.csv", s.degrade(s.handleCellsCSV))
	mux.HandleFunc("GET /progress", s.degrade(s.handleProgress))
	mux.HandleFunc("GET /metrics", s.degrade(s.handleMetrics))
	mux.HandleFunc("GET /traces", s.degrade(s.handleTraces))
	mux.HandleFunc("GET /traces.json", s.degrade(s.handleTracesJSON))
	mux.HandleFunc("GET /traces.chrome.json", s.degrade(s.handleTracesChrome))
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: decoding submit: %w", err))
		return
	}
	st, err := s.Submit(req.Sweep, req.Params)
	if err != nil {
		if errors.Is(err, ErrUnknownSweep) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: decoding lease: %w", err))
		return
	}
	now := s.now()
	s.mu.Lock()
	s.reapLocked(now)
	l, hint, err := s.q.acquire(now, req.Worker)
	if err != nil {
		s.mu.Unlock()
		retryAfter(w, hint)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.cLeases.Inc()
	j := l.job
	j.span.Eventf("lease", "%s granted to %s (attempt %d, seed %d)", l.id, req.Worker, j.attempts, l.seed)
	if l.seed != j.seed {
		j.span.Eventf("retry-seed", "seed perturbed %d -> %d after %d content failures", j.seed, l.seed, j.failures)
	}
	traceCtx := j.span.Context()
	resp := LeaseResponse{
		LeaseID:   l.id,
		Campaign:  j.campaign.ID,
		Sweep:     j.campaign.Sweep,
		Params:    j.campaign.Params,
		CellID:    j.cellID,
		CellIndex: j.index,
		Seed:      l.seed,
		TTLMillis: s.q.leaseTTL.Milliseconds(),
	}
	s.mu.Unlock()
	s.logf("campaign: leased %s to %s (%s, seed %d)", j.fullID(), req.Worker, l.id, l.seed)
	traceCtx.SetHeader(w.Header())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: decoding heartbeat: %w", err))
		return
	}
	now := s.now()
	s.mu.Lock()
	s.reapLocked(now)
	err := s.q.heartbeat(now, req.LeaseID)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"ttl_ms": s.q.leaseTTL.Milliseconds()})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: decoding complete: %w", err))
		return
	}
	now := s.now()
	s.mu.Lock()
	s.reapLocked(now)
	j, status, err := s.q.complete(now, req.LeaseID, req.Record.Class)
	if err != nil {
		s.mu.Unlock()
		// The lease is gone: expired and requeued, or this is a
		// duplicated RPC for a cell that already completed. Either way
		// the result — and its spans — is discarded; exactly-once
		// accounting lives here, and the store's (trace, span) dedupe
		// backstops any duplicate that slips past.
		writeError(w, http.StatusGone, err)
		return
	}
	s.ingestSpansLocked(req.Spans)
	switch status {
	case completeDone:
		s.finishLocked(j, req.Record, false)
	case completeQuarantined:
		s.finishLocked(j, req.Record, true)
		s.logf("campaign: quarantined %s after %d attempts (%s)", j.fullID(), j.attempts, req.Record.Class)
	default: // requeued for another attempt with a perturbed seed
		s.cRequeued.Inc()
		j.span.Eventf("requeue", "%s reported, backing off for attempt %d/%d", req.Record.Class, j.attempts+1, s.q.maxAttempts)
		s.logf("campaign: requeued %s after %s (attempt %d/%d)", j.fullID(), req.Record.Class, j.attempts, s.q.maxAttempts)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, CompleteResponse{Status: status})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	s.mu.Lock()
	s.reapLocked(now)
	c, ok := s.campaigns[r.PathValue("id")]
	var st StatusResponse
	if ok {
		st = s.statusLocked(c)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownCampaign)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	s.mu.Lock()
	s.reapLocked(now)
	c, ok := s.campaigns[r.PathValue("id")]
	var buf []byte
	var err error
	if ok {
		buf, err = s.resultsLocked(c)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownCampaign)
		return
	}
	if err != nil {
		if errors.Is(err, ErrIncomplete) {
			// Not done yet: tell the poller when to come back rather
			// than blocking the connection.
			retryAfter(w, time.Second)
			writeError(w, http.StatusAccepted, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	v, stale, err := s.progress.get(now, func() (any, error) {
		s.cProgressRef.Inc()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.reapLocked(now)
		p := ProgressResponse{CacheLen: s.cache.len()}
		for _, id := range s.order {
			st := s.statusLocked(s.campaigns[id])
			p.Campaigns = append(p.Campaigns, st)
			p.Cells += st.Total
			p.Done += st.Done + st.Quarantined
			p.Cached += st.Cached
		}
		return p, nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	p := v.(ProgressResponse)
	p.Stale = stale
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	if err := telemetry.WritePrometheus(w, snap); err != nil {
		s.logf("campaign: writing metrics: %v", err)
	}
}
