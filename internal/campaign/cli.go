package campaign

import (
	"flag"
	"net/http"
	"os"
	"time"

	"repro/internal/teletrace"
)

// WorkerMain parses worker flags and runs the lease loop; it backs
// both `campaignd worker` and the standalone cmd/campaignw binary so
// the two spell identical flags.
func WorkerMain(args []string, defaultName string, logf func(format string, v ...any)) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	connect := fs.String("connect", "http://127.0.0.1:8080", "coordinator base URL")
	name := fs.String("name", defaultName, "worker name (coordinator logs)")
	poll := fs.Duration("poll", 250*time.Millisecond, "idle poll interval")
	trialTimeout := fs.Duration("trial-timeout", 2*time.Minute, "per-cell wall-clock budget (0: none)")
	maxCells := fs.Int("max-cells", 0, "exit after N completed cells (0: unlimited)")
	killAfter := fs.Int("chaos-kill-after", 0, "chaos: exit(137) holding the Nth lease (0: never)")
	dropEvery := fs.Int("chaos-drop-every", 0, "chaos: drop every Nth RPC (0: never)")
	dupEvery := fs.Int("chaos-dup-every", 0, "chaos: duplicate every Nth RPC (0: never)")
	delayEvery := fs.Int("chaos-delay-every", 0, "chaos: delay every Nth RPC (0: never)")
	delay := fs.Duration("chaos-delay", 50*time.Millisecond, "chaos: injected RPC delay")
	traceOn := fs.Bool("trace", true, "ship claim/attempt spans to the coordinator with each completed cell")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tracer *teletrace.Tracer
	if *traceOn {
		tracer = teletrace.New(teletrace.Config{
			Service: *name,
			Store:   teletrace.NewStore(0),
		})
	}

	client := http.DefaultClient
	if *dropEvery > 0 || *dupEvery > 0 || *delayEvery > 0 {
		client = &http.Client{Transport: &ChaosTransport{
			DropEvery:  *dropEvery,
			DupEvery:   *dupEvery,
			DelayEvery: *delayEvery,
			Delay:      *delay,
		}}
	}
	return RunWorker(WorkerConfig{
		BaseURL:      *connect,
		Name:         *name,
		Client:       client,
		PollInterval: *poll,
		TrialTimeout: *trialTimeout,
		MaxCells:     *maxCells,
		KillAfter:    *killAfter,
		Kill:         func() { os.Exit(137) },
		Logf:         logf,
		Tracer:       tracer,
	})
}
