package campaign

import (
	"errors"
	"testing"
	"time"
)

var epoch = time.Unix(1_000_000_000, 0)

func TestLimiterBurstAndRefill(t *testing.T) {
	l := newLimiter(2, 2) // 2 req/s, burst 2
	now := epoch
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow(now); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := l.allow(now)
	if ok {
		t.Fatal("over-burst request allowed")
	}
	if wait < time.Second {
		t.Fatalf("Retry-After hint %v, want >= 1s (whole seconds)", wait)
	}
	// Half a second refills one token at 2/s.
	if ok, _ := l.allow(now.Add(500 * time.Millisecond)); !ok {
		t.Fatal("refilled token rejected")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := newLimiter(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := l.allow(epoch); !ok {
			t.Fatal("disabled limiter rejected a request")
		}
	}
}

func TestGateShedsWhenQueueFull(t *testing.T) {
	// Width 1, queue 0: one holder fills both the slot and the (only)
	// waiter token, so the next caller sheds synchronously.
	g := newGate(1, 0, 2*time.Second)
	rel, _, err := g.enter()
	if err != nil {
		t.Fatal(err)
	}
	_, retry, err := g.enter()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full gate returned %v, want ErrOverloaded", err)
	}
	if retry != 2*time.Second {
		t.Fatalf("retry hint %v, want 2s", retry)
	}
	rel()
	// Released: the next caller gets in again.
	rel2, _, err := g.enter()
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestGateParksBoundedWaiters(t *testing.T) {
	g := newGate(1, 1, time.Second)
	rel1, _, err := g.enter()
	if err != nil {
		t.Fatal(err)
	}
	// The second caller parks in the bounded queue.
	entered := make(chan func(), 1)
	go func() {
		rel, _, err := g.enter()
		if err != nil {
			t.Error(err)
			return
		}
		entered <- rel
	}()
	// Wait until it holds the waiter token, then a third caller sheds.
	for len(g.waiters) < 2 {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := g.enter(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow caller got %v, want ErrOverloaded", err)
	}
	rel1() // free the slot; the parked waiter proceeds
	select {
	case rel := <-entered:
		rel()
	case <-time.After(2 * time.Second):
		t.Fatal("parked waiter never got the slot")
	}
}

func TestMemoTTLAndInvalidate(t *testing.T) {
	m := newMemo(time.Second)
	calls := 0
	fn := func() (any, error) { calls++; return calls, nil }

	v, stale, err := m.get(epoch, fn)
	if err != nil || stale || v.(int) != 1 {
		t.Fatalf("first get = (%v, %v, %v)", v, stale, err)
	}
	// Within TTL: served from cache.
	if v, _, _ = m.get(epoch.Add(500*time.Millisecond), fn); v.(int) != 1 {
		t.Fatalf("cached get recomputed: %v", v)
	}
	// Past TTL: recomputed.
	if v, _, _ = m.get(epoch.Add(2*time.Second), fn); v.(int) != 2 {
		t.Fatalf("expired get served stale: %v", v)
	}
	m.invalidate()
	if v, _, _ = m.get(epoch.Add(2*time.Second), fn); v.(int) != 3 {
		t.Fatalf("invalidated get served stale: %v", v)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestMemoServesStaleDuringRecompute(t *testing.T) {
	m := newMemo(time.Second)
	if _, _, err := m.get(epoch, func() (any, error) { return "fresh", nil }); err != nil {
		t.Fatal(err)
	}
	// Simulate an in-flight recompute: a second caller past the TTL
	// must get the stale value immediately, not block.
	m.mu.Lock()
	m.inflight = true
	m.mu.Unlock()
	v, stale, err := m.get(epoch.Add(2*time.Second), func() (any, error) {
		t.Fatal("stale path must not recompute")
		return nil, nil
	})
	if err != nil || !stale || v.(string) != "fresh" {
		t.Fatalf("stale get = (%v, %v, %v), want (fresh, true, nil)", v, stale, err)
	}
}
