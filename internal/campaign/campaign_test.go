package campaign

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func TestCellKeyDeterministic(t *testing.T) {
	p := experiments.Params{Seed: 7}.Normalize()
	a := cellKey("figure3", p, "diff/3", "", 707)
	b := cellKey("figure3", p, "diff/3", "", 707)
	if a != b {
		t.Fatalf("same inputs hashed differently: %v vs %v", a, b)
	}
	// Default spellings collide with explicit defaults (Normalize).
	c := cellKey("figure3", experiments.Params{Seed: 7}.Normalize(), "diff/3", "", 707)
	if a != c {
		t.Fatalf("normalized params hashed differently: %v vs %v", a, c)
	}
}

func TestCellKeySensitivity(t *testing.T) {
	p := experiments.Params{Seed: 7}.Normalize()
	base := cellKey("figure3", p, "diff/3", "", 707)
	if k := cellKey("figure6", p, "diff/3", "", 707); k.Config == base.Config {
		t.Fatal("sweep name not in config digest")
	}
	if k := cellKey("figure3", p, "diff/4", "", 707); k.Config == base.Config {
		t.Fatal("cell ID not in config digest")
	}
	p2 := p
	p2.Scale = 999
	if k := cellKey("figure3", p2, "diff/3", "", 707); k.Config == base.Config {
		t.Fatal("params not in config digest")
	}
	// Seed is its own key component, NOT part of the config digest.
	if k := cellKey("figure3", p, "diff/3", "", 708); k.Config != base.Config {
		t.Fatal("seed leaked into config digest")
	} else if k == base {
		t.Fatal("seed not a key component")
	}
	if k := cellKey("figure12", p, "bubblesort/const-65", "const-65", 707); k.Scheme != "const-65" {
		t.Fatalf("scheme component = %q", k.Scheme)
	}
}

func TestCellNameFormat(t *testing.T) {
	k := Key{Config: "abcd1234", Seed: 42, Scheme: "log-2"}
	name := cellName("figure12", "bubblesort/log-2", k)
	want := "figure12/bubblesort/log-2@cfg=abcd1234,seed=42,scheme=log-2"
	if name != want {
		t.Fatalf("cellName = %q, want %q", name, want)
	}
	if !strings.Contains(name, k.String()) {
		t.Fatal("cell name must embed the canonical key")
	}
}

func TestCampaignIDIdempotent(t *testing.T) {
	a := CampaignID("figure3", experiments.Params{})
	b := CampaignID("figure3", experiments.Params{Seed: 42, Samples: 1000, Bits: 1000, Scale: 10000})
	if a != b {
		t.Fatalf("default spellings got different IDs: %s vs %s", a, b)
	}
	if c := CampaignID("figure3", experiments.Params{Seed: 43}); c == a {
		t.Fatal("different seed, same campaign ID")
	}
	if c := CampaignID("figure6", experiments.Params{}); c == a {
		t.Fatal("different sweep, same campaign ID")
	}
}

func TestEncodeCSVMatchesRenderer(t *testing.T) {
	rows := [][]string{{"a", "b"}, {"1", "2,with comma"}}
	buf, err := EncodeCSV(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"2,with comma\"\n"
	if string(buf) != want {
		t.Fatalf("EncodeCSV = %q, want %q", buf, want)
	}
}

func TestResultCacheFIFOEviction(t *testing.T) {
	c := newResultCache(2)
	rec := func(name string) harness.Record {
		return harness.Record{Kind: harness.RecordKindCell, Cell: name, Class: harness.ClassOK}
	}
	c.put("a", rec("a"))
	c.put("b", rec("b"))
	if n := c.put("c", rec("c")); n != 1 {
		t.Fatalf("expected 1 eviction, got %d", n)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for _, name := range []string{"b", "c"} {
		if _, ok := c.get(name); !ok {
			t.Fatalf("entry %q evicted out of order", name)
		}
	}
	// Overwrites don't grow the cache.
	c.put("c", rec("c"))
	if c.len() != 2 {
		t.Fatalf("len = %d after overwrite, want 2", c.len())
	}
}

func TestResultCacheUnbounded(t *testing.T) {
	c := newResultCache(0)
	for i := 0; i < 100; i++ {
		c.put(string(rune('a'+i%26))+string(rune('0'+i/26)), harness.Record{Kind: harness.RecordKindCell})
	}
	if c.len() != 100 {
		t.Fatalf("unbounded cache evicted: len=%d", c.len())
	}
}
