package campaign

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ChaosTransport is a deterministic fault-injecting http.RoundTripper:
// it counts requests and, on a fixed cadence, drops them (transport
// error without sending), duplicates them (sends twice, returns the
// second response), or delays them. Counter-based rather than random,
// so a chaos run is reproducible from its flag settings alone.
//
// Duplication is the interesting one for exactly-once accounting: a
// duplicated /v1/complete must not double-count a cell (the second
// copy hits a dead lease and gets 410).
type ChaosTransport struct {
	// Base is the real transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// DropEvery drops every Nth request (0 disables).
	DropEvery int
	// DupEvery duplicates every Nth request (0 disables).
	DupEvery int
	// DelayEvery delays every Nth request by Delay (0 disables).
	DelayEvery int
	Delay      time.Duration

	mu sync.Mutex
	n  int
}

// ErrChaosDrop marks a request eaten by the chaos transport.
var ErrChaosDrop = fmt.Errorf("campaign: chaos transport dropped request")

func (t *ChaosTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.n++
	n := t.n
	t.mu.Unlock()

	// Buffer the body so the request can be replayed (dup) or safely
	// discarded (drop) — http.Request bodies are one-shot streams.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("campaign: chaos transport reading body: %w", err)
		}
	}
	fresh := func() *http.Request {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return r
	}

	if t.DropEvery > 0 && n%t.DropEvery == 0 {
		return nil, fmt.Errorf("%w (request %d %s %s)", ErrChaosDrop, n, req.Method, req.URL.Path)
	}
	if t.DelayEvery > 0 && n%t.DelayEvery == 0 && t.Delay > 0 {
		time.Sleep(t.Delay)
	}
	if t.DupEvery > 0 && n%t.DupEvery == 0 {
		// First copy: send and discard (the caller never sees it, like
		// a response lost in the network after the server processed it).
		if resp, err := t.base().RoundTrip(fresh()); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return t.base().RoundTrip(fresh())
}
