package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"fmt"

	"repro/internal/experiments"
)

// Key is the content address of one sweep cell: the triple the result
// cache is keyed on. Two cells with equal keys are guaranteed to
// simulate identically (the determinism contract: a cell's value is a
// pure function of its configuration, seed and scheme), so a cached
// result can be served in place of a re-simulation.
type Key struct {
	// Config is a hex digest over the sweep name, the cell ID and every
	// non-seed parameter (normalized, so default spellings collide as
	// they should).
	Config string `json:"config"`
	// Seed is the cell's base seed (retry attempts perturb the running
	// seed but resolve to the same cell; the cache stores terminal
	// outcomes only).
	Seed int64 `json:"seed"`
	// Scheme is the undo-scheme component for sweeps that shard across
	// schemes (figure12); empty when the sweep pins a single scheme.
	Scheme string `json:"scheme,omitempty"`
}

// String renders the canonical key form used in journal cell names.
func (k Key) String() string {
	return fmt.Sprintf("cfg=%s,seed=%d,scheme=%s", k.Config, k.Seed, k.Scheme)
}

// cellKey computes the content address of one cell.
func cellKey(sweep string, p experiments.Params, cellID, scheme string, seed int64) Key {
	p = p.Normalize()
	h := sha256.New()
	// Seed is deliberately excluded from the config digest: it is its
	// own key component.
	fmt.Fprintf(h, "%s\x00%s\x00samples=%d,bits=%d,scale=%d", sweep, cellID, p.Samples, p.Bits, p.Scale)
	return Key{
		Config: hex.EncodeToString(h.Sum(nil))[:16],
		Seed:   seed,
		Scheme: scheme,
	}
}

// cellName builds the journal/cache name of a cell: the human-readable
// sweep path plus the content key, so a journal line is greppable AND
// collision-free across campaigns with different parameters.
func cellName(sweep, cellID string, k Key) string {
	return sweep + "/" + cellID + "@" + k.String()
}

// CampaignID derives the deterministic ID of a (sweep, params)
// submission. Submission is idempotent: re-submitting the same sweep
// returns the existing campaign instead of scheduling duplicate work.
func CampaignID(sweep string, p experiments.Params) string {
	p = p.Normalize()
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00seed=%d,samples=%d,bits=%d,scale=%d", sweep, p.Seed, p.Samples, p.Bits, p.Scale)
	return "c" + hex.EncodeToString(h.Sum(nil))[:12]
}

// Campaign is one submitted sweep: its definition plus the jobs in
// enumeration order (the order aggregation depends on).
type Campaign struct {
	ID     string
	Sweep  string
	Params experiments.Params

	def  experiments.SweepDef
	jobs []*job
	csv  []byte // memoized aggregate (immutable once complete)
}

// EncodeCSV renders rows exactly as experiments.WriteCSV writes them
// to disk, so a coordinator-served CSV is byte-comparable against a
// single-process cmd/figures output.
func EncodeCSV(rows [][]string) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		return nil, fmt.Errorf("campaign: encoding csv: %w", err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, fmt.Errorf("campaign: encoding csv: %w", err)
	}
	return buf.Bytes(), nil
}
