package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/telemetry"
	"repro/internal/teletrace"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// BaseURL is the coordinator, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Name identifies this worker in coordinator logs.
	Name string
	// Client is the HTTP client; nil means http.DefaultClient. The
	// chaos harness injects a fault transport here.
	Client *http.Client
	// PollInterval caps how long the worker sleeps when the coordinator
	// has no work (the coordinator's Retry-After hint wins when
	// shorter). <=0 means 1s.
	PollInterval time.Duration
	// TrialTimeout bounds one cell simulation. 0 disables it.
	TrialTimeout time.Duration
	// MaxCells stops the worker after N completed cells (0: unlimited).
	MaxCells int
	// KillAfter, when >0, makes the worker invoke Kill after its Nth
	// lease grant WITHOUT completing or releasing it — the chaos
	// harness's stand-in for a worker dying mid-cell.
	KillAfter int
	// Kill is what a chaos kill does; nil means os.Exit is NOT called
	// (the worker just returns), so tests can run workers in-process.
	Kill func()
	// Logf receives worker log lines; nil discards them.
	Logf func(format string, args ...any)
	// Tracer enables worker-side tracing: each leased cell runs under a
	// claim span parented on the coordinator's X-Trace-Context, and the
	// tracer's collected spans ship back in the complete RPC. Nil
	// disables local spans; the coordinator's trace ID still propagates
	// into journal records.
	Tracer *teletrace.Tracer
}

// RunWorker runs the lease → simulate → complete loop until the
// coordinator is unreachable for too long, MaxCells is reached, or a
// chaos kill fires. Each leased cell runs under a single-attempt
// harness runner (retries are coordinator-driven, so the retry seed
// policy lives in exactly one place) while a background heartbeat
// keeps the lease alive.
func RunWorker(cfg WorkerConfig) error {
	w := &worker{cfg: cfg, client: cfg.Client}
	if w.client == nil {
		w.client = http.DefaultClient
	}
	w.logf = cfg.Logf
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	if w.cfg.PollInterval <= 0 {
		w.cfg.PollInterval = time.Second
	}
	w.cells = map[string][]harness.Cell{}
	return w.run()
}

type worker struct {
	cfg    WorkerConfig
	client *http.Client
	logf   func(string, ...any)
	// cells caches each campaign's enumeration so a worker holding many
	// leases of one campaign enumerates once.
	cells map[string][]harness.Cell

	leases int
	done   int
}

func (w *worker) run() error {
	const maxIdlePolls = 60
	idle := 0
	for {
		if w.cfg.MaxCells > 0 && w.done >= w.cfg.MaxCells {
			w.logf("worker %s: cell budget reached (%d), exiting", w.cfg.Name, w.done)
			return nil
		}
		lease, wait, err := w.acquire()
		if err != nil {
			idle++
			if idle > maxIdlePolls {
				return fmt.Errorf("campaign: worker %s: coordinator unreachable or idle too long: %w", w.cfg.Name, err)
			}
			time.Sleep(wait)
			continue
		}
		idle = 0
		w.leases++
		if w.cfg.KillAfter > 0 && w.leases >= w.cfg.KillAfter {
			// Chaos: die holding the lease. The coordinator's reaper
			// must requeue the cell for someone else.
			w.logf("worker %s: chaos kill on lease %d (%s)", w.cfg.Name, w.leases, lease.LeaseID)
			if w.cfg.Kill != nil {
				w.cfg.Kill()
			}
			return nil
		}
		if err := w.execute(lease); err != nil {
			w.logf("worker %s: %v", w.cfg.Name, err)
		}
	}
}

// acquire asks for a lease. On 204 (or transport failure) it returns
// how long to wait before asking again.
func (w *worker) acquire() (*LeaseResponse, time.Duration, error) {
	wait := w.cfg.PollInterval
	resp, err := w.postJSON("/v1/lease", LeaseRequest{Worker: w.cfg.Name})
	if err != nil {
		return nil, wait, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var l LeaseResponse
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return nil, wait, fmt.Errorf("campaign: decoding lease: %w", err)
		}
		l.trace = teletrace.FromHeader(resp.Header)
		return &l, 0, nil
	case http.StatusNoContent:
		if ra := parseRetryAfter(resp.Header); ra > 0 && ra < wait {
			wait = ra
		}
		return nil, wait, fmt.Errorf("campaign: worker %s: %w", w.cfg.Name, ErrNoWork)
	default:
		return nil, wait, fmt.Errorf("campaign: lease request: unexpected status %s", resp.Status)
	}
}

// execute simulates the leased cell under heartbeats and reports the
// terminal record, plus any spans the worker's tracer collected: a
// claim span parented on the coordinator's cell span, with the harness
// cell/attempt spans nested beneath it.
func (w *worker) execute(l *LeaseResponse) error {
	cell, err := w.cell(l)
	if err != nil {
		return err
	}
	stop := w.heartbeat(l)
	defer stop()

	claim := w.cfg.Tracer.StartSpan("worker/claim", l.trace)
	claim.SetAttr("lease", l.LeaseID)
	claim.SetAttr("cell", l.Sweep+"/"+l.CellID)
	if ctx := claim.Context(); ctx.Valid() {
		cell.Trace = ctx // harness spans nest under the claim
	} else {
		cell.Trace = l.trace // untraced worker: still propagate the ID
	}

	reg := telemetry.NewRegistry()
	runner, err := harness.New(harness.Config{
		Workers:      1,
		MaxAttempts:  1, // retries are coordinator-driven
		TrialTimeout: w.cfg.TrialTimeout,
		Metrics:      reg,
		Tracer:       w.cfg.Tracer,
	})
	if err != nil {
		claim.End()
		return fmt.Errorf("campaign: building runner: %w", err)
	}
	defer runner.Close()
	cell.Seed = l.Seed // the lease seed embeds the coordinator's retry policy
	rep, err := runner.Sweep(l.Sweep, []harness.Cell{cell})
	if err != nil {
		claim.SetError(err)
		claim.End()
		return fmt.Errorf("campaign: sweeping %s: %w", l.CellID, err)
	}
	rec := harness.RecordOf(rep.Outcomes[0])
	claim.SetAttr("class", string(rec.Class))
	claim.End()
	stop() // no point extending the lease while we report

	w.done++
	w.logf("worker %s: %s/%s -> %s (%d done)", w.cfg.Name, l.Sweep, l.CellID, rec.Class, w.done)
	return w.complete(l.LeaseID, rec, w.drainSpans())
}

// drainSpans empties the worker tracer's store for shipping in the
// complete RPC. Nil tracer (or storeless tracer) means no spans.
func (w *worker) drainSpans() []teletrace.SpanData {
	if st := w.cfg.Tracer.Store(); st != nil {
		return st.Drain()
	}
	return nil
}

// cell resolves the leased cell from the sweep enumeration (cached per
// campaign), cross-checking the coordinator's cell ID.
func (w *worker) cell(l *LeaseResponse) (harness.Cell, error) {
	cells, ok := w.cells[l.Campaign]
	if !ok {
		def, found := experiments.SweepByName(l.Sweep)
		if !found {
			return harness.Cell{}, fmt.Errorf("%w: %q", ErrUnknownSweep, l.Sweep)
		}
		cells = def.Cells(l.Params)
		w.cells[l.Campaign] = cells
	}
	if l.CellIndex < 0 || l.CellIndex >= len(cells) {
		return harness.Cell{}, fmt.Errorf("campaign: lease %s: cell index %d out of range (%d cells)", l.LeaseID, l.CellIndex, len(cells))
	}
	cell := cells[l.CellIndex]
	if cell.ID != l.CellID {
		return harness.Cell{}, fmt.Errorf("campaign: lease %s: cell ID mismatch: enumeration says %q, coordinator says %q (params drift?)", l.LeaseID, cell.ID, l.CellID)
	}
	return cell, nil
}

// heartbeat extends the lease at TTL/3 until the returned stop is
// called. A 410 means the lease was reaped (the coordinator presumed
// us dead); the loop stops — the cell belongs to someone else now.
func (w *worker) heartbeat(l *LeaseResponse) (stop func()) {
	interval := time.Duration(l.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				resp, err := w.postJSON("/v1/heartbeat", HeartbeatRequest{LeaseID: l.LeaseID})
				if err != nil {
					continue // transient transport loss: keep trying until quit
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusGone {
					w.logf("worker %s: lease %s gone, stopping heartbeat", w.cfg.Name, l.LeaseID)
					return
				}
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(quit)
			<-finished
		}
	}
}

// complete reports the record (and collected spans), retrying
// transport errors (the chaos transport drops and duplicates RPCs). A
// 410 is success from the worker's point of view: the coordinator
// already settled the cell. Spans ride every retry — if the first RPC
// was dropped in flight the coordinator never saw them, and if it
// landed, the 410/dedupe path discards the resend.
func (w *worker) complete(leaseID string, rec harness.Record, spans []teletrace.SpanData) error {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		resp, err := w.postJSON("/v1/complete", CompleteRequest{LeaseID: leaseID, Record: rec, Spans: spans})
		if err != nil {
			lastErr = err
			time.Sleep(w.cfg.PollInterval / 4)
			continue
		}
		code := resp.StatusCode
		resp.Body.Close()
		switch code {
		case http.StatusOK, http.StatusGone:
			return nil
		default:
			return fmt.Errorf("campaign: complete %s: unexpected status %d", leaseID, code)
		}
	}
	return fmt.Errorf("campaign: complete %s: %w", leaseID, lastErr)
}

func (w *worker) postJSON(path string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding %s: %w", path, err)
	}
	req, err := http.NewRequest(http.MethodPost, w.cfg.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("campaign: building %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("campaign: %s: server error %s", path, resp.Status)
	}
	return resp, nil
}

func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
