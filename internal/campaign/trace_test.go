package campaign

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/telemetry"
	"repro/internal/teletrace"
)

// tracedServer is testServer plus a seeded coordinator tracer.
func tracedServer(t *testing.T, clk *fakeClock) (*Server, *teletrace.Store) {
	t.Helper()
	store := teletrace.NewStore(0)
	s := testServer(t, clk, func(cfg *Config) {
		cfg.Tracer = teletrace.New(teletrace.Config{Service: "campaignd", Store: store, Seed: 1})
	})
	return s, store
}

// TestTracedLeaseAndComplete walks one cell through the wire protocol
// and checks every propagation hop: the lease response carries the
// cell's trace context in X-Trace-Context, the worker's shipped spans
// land in the coordinator store, the root span closes with the
// outcome class, and a chaos-duplicated complete RPC leaves no extra
// spans behind.
func TestTracedLeaseAndComplete(t *testing.T) {
	clk := newFakeClock()
	s, store := tracedServer(t, clk)
	h := s.Handler()
	st := submitFigure2(t, h)

	var l LeaseResponse
	w := do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l)
	if w.Code != http.StatusOK {
		t.Fatalf("lease: %d %s", w.Code, w.Body.String())
	}
	ctx := teletrace.FromHeader(w.Result().Header)
	if !ctx.Valid() {
		t.Fatalf("lease response has no trace context: %q", w.Result().Header.Get(teletrace.Header))
	}

	// Fabricate what a traced worker ships: a claim span under the
	// coordinator's context with the record's trace ID matching.
	wtr := teletrace.New(teletrace.Config{Service: "worker-w1", Store: teletrace.NewStore(0), Seed: 2})
	claim := wtr.StartSpan("worker/claim", ctx)
	claim.SetAttr("lease", l.LeaseID)
	claim.End()
	spans := wtr.Store().Drain()

	rec := harness.Record{Kind: harness.RecordKindCell, Cell: l.Sweep + "/" + l.CellID, Seed: l.Seed,
		Attempts: 1, Class: harness.ClassOK, Value: json.RawMessage(`{"x":1}`),
		TraceID: ctx.Trace.String()}
	var done CompleteResponse
	if w := do(t, h, "POST", "/v1/complete", CompleteRequest{LeaseID: l.LeaseID, Record: rec, Spans: spans}, &done); w.Code != http.StatusOK {
		t.Fatalf("complete: %d %s", w.Code, w.Body.String())
	}

	got := store.Trace(ctx.Trace)
	var names []string
	for _, d := range got {
		names = append(names, d.Name)
	}
	if len(got) != 2 { // campaignd/cell (ended by finish) + worker/claim
		t.Fatalf("trace has %d spans (%v), want 2", len(got), names)
	}
	var root teletrace.SpanData
	for _, d := range got {
		if d.Name == "campaignd/cell" {
			root = d
		}
	}
	if root.ID == 0 || root.EndNS == 0 {
		t.Fatalf("cell root span missing or unended: %+v", root)
	}
	if root.Attrs["class"] != string(harness.ClassOK) {
		t.Fatalf("root span class attr: %+v", root.Attrs)
	}
	var leaseEvents int
	for _, ev := range root.Events {
		if ev.Name == "lease" {
			leaseEvents++
		}
	}
	if leaseEvents != 1 {
		t.Fatalf("root span lease events = %d, want 1: %+v", leaseEvents, root.Events)
	}

	// A duplicated complete RPC (chaos transport) answers 410 and must
	// not duplicate spans or events.
	before := store.Len()
	if w := do(t, h, "POST", "/v1/complete", CompleteRequest{LeaseID: l.LeaseID, Record: rec, Spans: spans}, nil); w.Code != http.StatusGone {
		t.Fatalf("duplicate complete: %d, want 410", w.Code)
	}
	if store.Len() != before {
		t.Fatalf("duplicate complete grew the span store: %d -> %d", before, store.Len())
	}

	// cells.csv links the cell to its trace.
	w = do(t, h, "GET", "/v1/campaigns/"+st.ID+"/cells.csv", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("cells.csv: %d %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), ctx.Trace.String()) {
		t.Fatalf("cells.csv missing trace %s:\n%s", ctx.Trace, w.Body.String())
	}

	// The explorer serves the trace both as JSON and HTML.
	var tr TracesResponse
	w = do(t, h, "GET", "/traces.json?trace="+ctx.Trace.String(), nil, &tr)
	if w.Code != http.StatusOK || len(tr.Spans) != 2 {
		t.Fatalf("traces.json?trace=: %d, %d spans", w.Code, len(tr.Spans))
	}
	w = do(t, h, "GET", "/traces.json", nil, &tr)
	if w.Code != http.StatusOK || len(tr.Traces) == 0 {
		t.Fatalf("traces.json summaries: %d, %d traces", w.Code, len(tr.Traces))
	}
	w = do(t, h, "GET", "/traces", nil, nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Result().Header.Get("Content-Type"), "text/html") {
		t.Fatalf("traces explorer: %d %s", w.Code, w.Result().Header.Get("Content-Type"))
	}
	w = do(t, h, "GET", "/traces.chrome.json", nil, nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ph"`) {
		t.Fatalf("chrome export: %d", w.Code)
	}
}

// TestUntracedServerTraceEndpoints pins the disabled path: no tracer
// means 404 on the explorer, no header on leases, and nothing breaks.
func TestUntracedServerTraceEndpoints(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, clk, nil)
	h := s.Handler()
	submitFigure2(t, h)

	var l LeaseResponse
	w := do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "w1"}, &l)
	if w.Code != http.StatusOK {
		t.Fatalf("lease: %d", w.Code)
	}
	if got := w.Result().Header.Get(teletrace.Header); got != "" {
		t.Fatalf("untraced lease has trace header %q", got)
	}
	for _, path := range []string{"/traces", "/traces.json", "/traces.chrome.json"} {
		if w := do(t, h, "GET", path, nil, nil); w.Code != http.StatusNotFound {
			t.Fatalf("%s on untraced server: %d, want 404", path, w.Code)
		}
	}
}

// TestQuarantineSpanCarriesError checks the reaper path: a cell whose
// workers keep dying ends its root span with the quarantine error and
// the record still links to the trace.
func TestQuarantineSpanCarriesError(t *testing.T) {
	clk := newFakeClock()
	s, store := tracedServer(t, clk)
	h := s.Handler()
	st := submitFigure2(t, h)

	// Burn the attempt budget (MaxAttempts=2) with silent workers.
	for i := 0; i < 2; i++ {
		var l LeaseResponse
		if w := do(t, h, "POST", "/v1/lease", LeaseRequest{Worker: "dead"}, &l); w.Code != http.StatusOK {
			t.Fatalf("lease %d: %d", i, w.Code)
		}
		clk.advance(11 * time.Second)
		do(t, h, "POST", "/v1/heartbeat", HeartbeatRequest{LeaseID: "L-none"}, nil) // reap
		clk.advance(time.Second)                                                    // past backoff
	}
	var after StatusResponse
	do(t, h, "GET", "/v1/campaigns/"+st.ID, nil, &after)
	if after.Quarantined == 0 {
		t.Fatalf("no quarantine after budget burn: %+v", after)
	}
	var found bool
	for _, d := range store.Spans() {
		if d.Name == "campaignd/cell" && d.Error != "" && strings.Contains(d.Error, "quarantined") {
			found = true
			if d.EndNS == 0 {
				t.Fatal("quarantined cell span not ended")
			}
		}
	}
	if !found {
		t.Fatalf("no quarantined root span in store (%d spans)", store.Len())
	}
}

// TestProgressSingleFlightUnderLoad hammers /progress with concurrent
// readers after the TTL lapses: exactly one recomputation may run
// (single-flight), everyone else gets the cached or stale aggregate,
// and nobody errors.
func TestProgressSingleFlightUnderLoad(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	s := testServer(t, clk, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.AggTTL = time.Second
	})
	h := s.Handler()
	submitFigure2(t, h)

	refreshes := func() uint64 {
		return reg.Snapshot().Counters["campaign_progress_refreshes_total"]
	}

	// Warm the cache: one refresh.
	if w := do(t, h, "GET", "/progress", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("warmup: %d", w.Code)
	}
	if got := refreshes(); got != 1 {
		t.Fatalf("warmup refreshes = %d, want 1", got)
	}

	// Within the TTL: any number of readers, zero recomputation.
	for i := 0; i < 10; i++ {
		if w := do(t, h, "GET", "/progress", nil, nil); w.Code != http.StatusOK {
			t.Fatalf("cached read: %d", w.Code)
		}
	}
	if got := refreshes(); got != 1 {
		t.Fatalf("cached reads recomputed: %d refreshes, want 1", got)
	}

	// Past the TTL: 32 concurrent readers, exactly one recompute —
	// the memo's mutex serializes the miss check, so the losers serve
	// the stale value instead of stampeding.
	clk.advance(2 * time.Second)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/progress", nil)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				errs <- w.Body.String()
				return
			}
			var p ProgressResponse
			if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
				errs <- err.Error()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent /progress failed: %s", e)
	}
	if got := refreshes(); got != 2 {
		t.Fatalf("concurrent stampede: %d refreshes, want 2 (warm + one single-flight)", got)
	}
}

// TestTracedChaosCampaign is the cross-process propagation test: a
// real coordinator and traced workers behind a duplicating chaos
// transport. Every completed cell must end with exactly one claim,
// one harness cell and one harness attempt span under its coordinator
// root — a duplicated complete RPC must not double-ingest.
func TestTracedChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("traced chaos campaign is a multi-second integration test")
	}
	store := teletrace.NewStore(0)
	srv, err := NewServer(Config{
		// Short TTL: a duplicated lease RPC orphans one lease (the
		// worker only sees one response), which must reap fast.
		LeaseTTL:    500 * time.Millisecond,
		MaxAttempts: 5,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Tracer:      teletrace.New(teletrace.Config{Service: "campaignd", Store: store, Seed: 3}),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := experiments.Params{Seed: 11}.Normalize()
	st, err := srv.Submit("figure3", p)
	if err != nil {
		t.Fatal(err)
	}

	// Workers run in rounds: each round spawns a fresh traced pair
	// (long figure3 cells make a lone poller exhaust its idle budget
	// while its sibling crunches). Distinct tracer seeds per round —
	// reusing a seed would regenerate identical span IDs and the
	// store's dedupe would silently eat the legitimate spans.
	deadline := time.Now().Add(120 * time.Second) //simlint:wallclock integration test deadline
	for round := 0; ; round++ {
		cur, err := srv.Submit("figure3", p)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Complete {
			break
		}
		if time.Now().After(deadline) { //simlint:wallclock integration test deadline
			t.Fatalf("campaign never completed: %+v", cur)
		}
		var wg sync.WaitGroup
		workers := []struct {
			name string
			rt   http.RoundTripper
		}{
			{"tw1", &ChaosTransport{DupEvery: 2}}, // every other RPC duplicated
			{"tw2", &ChaosTransport{DupEvery: 3, DelayEvery: 5, Delay: 5 * time.Millisecond}},
		}
		for i, wk := range workers {
			wg.Add(1)
			seed := uint64(101 + round*len(workers) + i)
			go func(name string, rt http.RoundTripper, seed uint64) {
				defer wg.Done()
				err := RunWorker(WorkerConfig{
					BaseURL: ts.URL, Name: name, PollInterval: 20 * time.Millisecond,
					Client: &http.Client{Transport: rt},
					Tracer: teletrace.New(teletrace.Config{Service: name, Store: teletrace.NewStore(0), Seed: seed}),
					Logf:   t.Logf,
				})
				if err != nil {
					t.Logf("worker %s exited: %v", name, err)
				}
			}(wk.name, wk.rt, seed)
		}
		wg.Wait()
	}
	ts.Close()

	// Per-trace causality: under a duplicating transport each done
	// cell still has exactly one span per hop.
	byTrace := map[teletrace.TraceID]map[string]int{}
	for _, d := range store.Spans() {
		m := byTrace[d.Trace]
		if m == nil {
			m = map[string]int{}
			byTrace[d.Trace] = m
		}
		m[d.Name]++
	}
	if len(byTrace) < st.Total {
		t.Fatalf("store has %d traces, want >= %d cells", len(byTrace), st.Total)
	}
	for id, names := range byTrace {
		if names["campaignd/cell"] != 1 {
			t.Fatalf("trace %s: %d root spans, want 1 (%v)", id, names["campaignd/cell"], names)
		}
		// Retried cells legitimately have one claim/attempt per lease;
		// duplicates of the SAME span are the bug being tested.
		if names["worker/claim"] > 5 || names["harness/attempt"] > 5 {
			t.Fatalf("trace %s has implausibly many spans (dup ingest?): %v", id, names)
		}
	}

	// Every record links into the store, and every cell a worker
	// actually ran has the full causal chain under its trace. (A cell
	// quarantined by repeatedly orphaned leases — a duplicated lease
	// RPC leases a job nobody runs — legitimately has only its root.)
	for _, j := range srv.campaigns[st.ID].jobs {
		if j.rec == nil || j.rec.TraceID == "" {
			t.Fatalf("cell %s record has no trace ID", j.name)
		}
		id, err := teletrace.ParseTraceID(j.rec.TraceID)
		if err != nil {
			t.Fatalf("cell %s trace ID %q: %v", j.name, j.rec.TraceID, err)
		}
		if len(store.Trace(id)) == 0 {
			t.Fatalf("cell %s trace %s has no spans", j.name, j.rec.TraceID)
		}
		if j.rec.Class == harness.ClassOK {
			names := byTrace[id]
			if names["worker/claim"] < 1 || names["harness/cell"] < 1 || names["harness/attempt"] < 1 {
				t.Fatalf("completed cell %s trace %s incomplete: %v", j.name, id, names)
			}
		}
	}
}
