package campaign

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/harness"
	"repro/internal/teletrace"
)

// cellState is the lifecycle of one queued cell.
type cellState int

const (
	statePending cellState = iota // waiting (possibly backing off) for a lease
	stateLeased                   // held by a worker under a live lease
	stateDone                     // terminal outcome recorded (ok or gap)
	stateQuarantined              // poison cell: exhausted its attempt budget
)

// job is one sweep cell flowing through the queue.
type job struct {
	campaign *Campaign
	index    int    // position in the campaign's enumeration order
	cellID   string // bare cell ID within the sweep
	name     string // journal/cache name (sweep path + content key)
	key      Key
	seed     int64 // base seed; content failures perturb the running seed

	state    cellState
	attempts int // attempts charged: every lease grant, including ones lost to dead workers
	failures int // content failures reported by workers (drives seed perturbation)
	readyAt  time.Time
	leaseID  string
	cached   bool
	rec      *harness.Record // terminal record (value or recorded gap)
	// span is the cell's root trace span (campaignd/cell), open from
	// enqueue to terminal outcome; nil when tracing is off.
	span *teletrace.Span
}

// fullID is the harness-style namespaced cell path.
func (j *job) fullID() string { return j.campaign.Sweep + "/" + j.cellID }

// lease is one worker's claim on a job. Leases expire: a worker that
// stops heartbeating is presumed dead and its cell is requeued.
type lease struct {
	id       string
	worker   string
	job      *job
	deadline time.Time
	seed     int64 // the seed this attempt must run with
}

// queue is the lease-based work-stealing core. It is not safe for
// concurrent use: the Server serializes access under its own mutex and
// threads the current time through every call, so queue behavior is a
// pure function of its inputs (testable with a fake clock, exercised
// deterministically by the chaos suite).
type queue struct {
	leaseTTL    time.Duration
	maxAttempts int
	backoffBase time.Duration
	backoffMax  time.Duration

	jobs   []*job // global lease-priority order (campaign submit order)
	byName map[string]*job
	leases map[string]*lease
	seq    uint64
}

func newQueue(leaseTTL time.Duration, maxAttempts int, backoffBase, backoffMax time.Duration) *queue {
	if leaseTTL <= 0 {
		leaseTTL = 30 * time.Second
	}
	if maxAttempts <= 0 {
		maxAttempts = 5
	}
	if backoffBase <= 0 {
		backoffBase = 500 * time.Millisecond
	}
	if backoffMax <= 0 {
		backoffMax = 15 * time.Second
	}
	return &queue{
		leaseTTL:    leaseTTL,
		maxAttempts: maxAttempts,
		backoffBase: backoffBase,
		backoffMax:  backoffMax,
		byName:      map[string]*job{},
		leases:      map[string]*lease{},
	}
}

// add registers a job (pending jobs become leasable immediately).
func (q *queue) add(j *job) {
	q.jobs = append(q.jobs, j)
	q.byName[j.name] = j
}

// acquire leases the first ready pending job to worker. When nothing
// is ready it returns ErrNoWork plus a retry hint: the time until the
// earliest backoff expires, or the lease TTL when nothing is pending
// at all (work may appear when leases die or campaigns arrive).
func (q *queue) acquire(now time.Time, worker string) (*lease, time.Duration, error) {
	var next time.Time
	for _, j := range q.jobs {
		if j.state != statePending {
			continue
		}
		if j.readyAt.After(now) {
			if next.IsZero() || j.readyAt.Before(next) {
				next = j.readyAt
			}
			continue
		}
		seed := j.seed
		if j.failures > 0 {
			seed = harness.PerturbSeed(j.seed, j.failures+1)
		}
		q.seq++
		l := &lease{
			id:       fmt.Sprintf("L%08d", q.seq),
			worker:   worker,
			job:      j,
			deadline: now.Add(q.leaseTTL),
			seed:     seed,
		}
		j.state = stateLeased
		j.leaseID = l.id
		j.attempts++ // charged at grant: a vanished worker still spent an attempt
		q.leases[l.id] = l
		return l, 0, nil
	}
	hint := q.leaseTTL
	if !next.IsZero() {
		hint = next.Sub(now)
		if hint <= 0 {
			hint = time.Millisecond
		}
	}
	return nil, hint, ErrNoWork
}

// heartbeat extends a live lease's deadline.
func (q *queue) heartbeat(now time.Time, leaseID string) error {
	l, ok := q.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	l.deadline = now.Add(q.leaseTTL)
	return nil
}

// release drops a lease without touching its job's state.
func (q *queue) release(l *lease) {
	delete(q.leases, l.id)
	l.job.leaseID = ""
}

// completion statuses returned by complete and reap.
const (
	completeDone        = "done"        // terminal outcome (ok, or non-retryable gap)
	completeRequeued    = "requeued"    // retryable failure: backing off for another lease
	completeQuarantined = "quarantined" // attempt budget exhausted: poison cell, recorded gap
)

// complete resolves a lease with the worker-reported class and returns
// the job plus what happened to it. The caller journals terminal
// records. Retry policy reuses the harness taxonomy: only retryable
// classes (panic/timeout/deadline/transient) earn another lease, with
// exponential backoff + deterministic jitter; deterministic errors and
// successes are terminal on the spot.
func (q *queue) complete(now time.Time, leaseID string, class harness.Class) (*job, string, error) {
	l, ok := q.leases[leaseID]
	if !ok {
		return nil, "", ErrLeaseGone
	}
	j := l.job
	q.release(l)
	if class == harness.ClassOK || !class.Retryable() {
		j.state = stateDone
		return j, completeDone, nil
	}
	j.failures++
	return j, q.requeue(now, j), nil
}

// requeue sends a failed job back to pending with backoff, or
// quarantines it when the attempt budget is spent.
func (q *queue) requeue(now time.Time, j *job) string {
	if j.attempts >= q.maxAttempts {
		j.state = stateQuarantined
		return completeQuarantined
	}
	j.state = statePending
	j.readyAt = now.Add(harness.Backoff(q.backoffBase, q.backoffMax, j.seed, j.attempts))
	return completeRequeued
}

// reap expires dead leases: each expired job is requeued with backoff
// (same seed — the cell did nothing wrong, its worker died) or
// quarantined when its budget is spent. Returns the requeued and
// quarantined jobs so the server can count and journal them.
func (q *queue) reap(now time.Time) (requeued, quarantined []*job) {
	var expired []string
	for id, l := range q.leases {
		if now.After(l.deadline) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	for _, id := range expired {
		l := q.leases[id]
		j := l.job
		q.release(l)
		switch q.requeue(now, j) {
		case completeQuarantined:
			quarantined = append(quarantined, j)
		default:
			requeued = append(requeued, j)
		}
	}
	return requeued, quarantined
}
