package campaign

import (
	"sync"
	"time"
)

// This file is the read-path degradation ladder (docs/CAMPAIGND.md):
//
//	limiter — token bucket; excess requests get 429 + Retry-After
//	gate    — bounded concurrency with a bounded wait queue; overflow
//	          gets 503 + Retry-After instead of an unbounded pile-up
//	memo    — TTL'd aggregate cache with single-flight recompute that
//	          serves the stale value while a fresh one is being built
//
// Everything takes the current time as an argument (the Server owns
// the clock), so the ladder is deterministic under test.

// limiter is a token bucket: capacity burst, refilled at rate/sec.
type limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <=0 disables the limiter
	burst  float64
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	if burst <= 0 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// allow consumes a token if one is available; otherwise it reports the
// duration after which a token will exist (the Retry-After hint).
func (l *limiter) allow(now time.Time) (bool, time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		return true, 0
	}
	wait := time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After is whole seconds; round up
	}
	return false, wait
}

// gate bounds in-flight requests to width, with at most queueLen
// callers parked waiting for a slot. A full queue sheds immediately
// (ErrOverloaded) rather than letting latency grow without bound.
type gate struct {
	slots   chan struct{}
	waiters chan struct{}
	retry   time.Duration
}

func newGate(width, queueLen int, retry time.Duration) *gate {
	if width <= 0 {
		width = 8
	}
	if queueLen < 0 {
		queueLen = 0
	}
	if retry <= 0 {
		retry = time.Second
	}
	return &gate{
		slots:   make(chan struct{}, width),
		waiters: make(chan struct{}, width+queueLen),
		retry:   retry,
	}
}

// enter claims a slot, waiting in the bounded queue if necessary.
// On success the returned release must be called exactly once. On
// overflow it returns ErrOverloaded with a Retry-After hint.
func (g *gate) enter() (release func(), retryAfter time.Duration, err error) {
	select {
	case g.waiters <- struct{}{}:
	default:
		return nil, g.retry, ErrOverloaded
	}
	g.slots <- struct{}{} // bounded wait: at most queueLen others ahead
	return func() {
		<-g.slots
		<-g.waiters
	}, 0, nil
}

// memo caches one expensive aggregate with a TTL. Within the TTL the
// cached value is served directly. Past it, ONE caller recomputes
// (single-flight) while everyone else keeps getting the stale value —
// reads stay fast and bounded even when recomputation is slow.
type memo struct {
	mu       sync.Mutex
	ttl      time.Duration
	val      any
	at       time.Time
	have     bool
	inflight bool
}

func newMemo(ttl time.Duration) *memo {
	if ttl <= 0 {
		ttl = time.Second
	}
	return &memo{ttl: ttl}
}

// get returns the memoized value, recomputing via fn when the TTL has
// lapsed. stale reports that the returned value predates the TTL (a
// concurrent caller is refreshing it).
func (m *memo) get(now time.Time, fn func() (any, error)) (v any, stale bool, err error) {
	m.mu.Lock()
	if m.have && now.Sub(m.at) < m.ttl {
		v = m.val
		m.mu.Unlock()
		return v, false, nil
	}
	if m.inflight {
		// Someone is already recomputing: serve stale if we can.
		if m.have {
			v = m.val
			m.mu.Unlock()
			return v, true, nil
		}
		// Nothing cached yet — fall through and compute too (first
		// requests racing on a cold cache all pay; the gate bounds them).
	}
	m.inflight = true
	m.mu.Unlock()

	v, err = fn()

	m.mu.Lock()
	m.inflight = false
	if err == nil {
		m.val, m.at, m.have = v, now, true
	}
	m.mu.Unlock()
	return v, false, err
}

// invalidate drops the cached value (called when new results land).
func (m *memo) invalidate() {
	m.mu.Lock()
	m.have = false
	m.val = nil
	m.mu.Unlock()
}
