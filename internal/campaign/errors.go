// Package campaign is the distributed campaign service behind
// cmd/campaignd: it shards a figure sweep into content-addressed cells,
// serves them to worker processes over a lease-based work-stealing
// queue, requeues the leases of dead workers with exponential backoff,
// quarantines poison cells, memoizes results across campaigns, and
// journals every terminal cell through the harness JSONL format so a
// killed-and-restarted coordinator resumes byte-identically.
//
// See docs/CAMPAIGND.md for the HTTP API, lease/retry/quarantine
// semantics, cache keying and the chaos harness.
package campaign

import "errors"

// Typed sentinels, compared with errors.Is (never ==; simlint typederr
// enforces the discipline repo-wide).
var (
	// ErrNoWork means no cell is leasable right now: everything is
	// done, leased out, or backing off. Workers should retry after the
	// hinted delay.
	ErrNoWork = errors.New("campaign: no work available")
	// ErrLeaseGone means the lease is unknown: expired and reaped,
	// already completed, or never granted. The worker's result (if any)
	// is discarded — the cell was or will be served by another lease.
	ErrLeaseGone = errors.New("campaign: lease expired or unknown")
	// ErrUnknownCampaign means the campaign ID is not registered with
	// this coordinator (submit the sweep first; submission is
	// idempotent).
	ErrUnknownCampaign = errors.New("campaign: unknown campaign")
	// ErrUnknownSweep means the sweep name has no shardable definition
	// (see experiments.Sweeps).
	ErrUnknownSweep = errors.New("campaign: unknown sweep")
	// ErrIncomplete means aggregated results were requested before
	// every cell reached a terminal state.
	ErrIncomplete = errors.New("campaign: campaign incomplete")
	// ErrOverloaded means a read endpoint shed the request to protect
	// the coordinator; retry after the hinted delay.
	ErrOverloaded = errors.New("campaign: overloaded")
	// ErrTracingDisabled means a trace endpoint was queried on a
	// coordinator running without a tracer (Config.Tracer was nil).
	ErrTracingDisabled = errors.New("campaign: tracing disabled")
)
