package detrand

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesUnwrappedSource proves wrapping is invisible: a Rand
// over a CountingSource yields the same values as one over the bare
// source, across every method the simulator uses.
func TestStreamMatchesUnwrappedSource(t *testing.T) {
	const seed = 42
	wrapped := rand.New(NewCountingSource(seed))
	bare := rand.New(rand.NewSource(seed))
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := wrapped.Intn(16), bare.Intn(16); a != b {
				t.Fatalf("Intn diverged at draw %d: %d != %d", i, a, b)
			}
		case 1:
			if a, b := wrapped.Float64(), bare.Float64(); a != b {
				t.Fatalf("Float64 diverged at draw %d", i)
			}
		case 2:
			if a, b := wrapped.NormFloat64(), bare.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at draw %d", i)
			}
		case 3:
			if a, b := wrapped.Int63(), bare.Int63(); a != b {
				t.Fatalf("Int63 diverged at draw %d", i)
			}
		}
	}
}

// TestSeekTo checks both directions: rewind (reseed+replay) and
// fast-forward land on the exact stream position.
func TestSeekTo(t *testing.T) {
	src := NewCountingSource(7)
	r := rand.New(src)
	var ref []int
	for i := 0; i < 50; i++ {
		ref = append(ref, r.Intn(1000))
	}
	mark := src.Draws()
	tail := []int{r.Intn(1000), r.Intn(1000)}

	src.SeekTo(mark) // rewind
	if got := []int{r.Intn(1000), r.Intn(1000)}; got[0] != tail[0] || got[1] != tail[1] {
		t.Fatalf("rewind SeekTo replayed %v, want %v", got, tail)
	}

	src.Seed(7)
	src.SeekTo(mark) // fast-forward from zero
	if got := r.Intn(1000); got != tail[0] {
		t.Fatalf("fast-forward SeekTo yields %d, want %d", got, tail[0])
	}
}

// TestSeekToAllocates pins the zero-allocation contract of restore.
func TestSeekToAllocates(t *testing.T) {
	src := NewCountingSource(3)
	r := rand.New(src)
	for i := 0; i < 100; i++ {
		r.Intn(64)
	}
	mark := src.Draws()
	if avg := testing.AllocsPerRun(50, func() {
		r.Intn(64)
		src.SeekTo(mark)
	}); avg != 0 {
		t.Errorf("SeekTo allocates %.1f/op, want 0", avg)
	}
}
