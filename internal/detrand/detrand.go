// Package detrand provides the snapshot-friendly randomness primitive
// the simulator's seeded components share: a math/rand Source wrapper
// that counts how many raw draws have been taken, so an RNG's exact
// stream position can be captured as a single integer and restored by
// reseed-and-replay. That keeps snapshots cheap (one uint64) without
// changing the value stream the wrapped source produces — every
// *rand.Rand method drains through Int63, so wrapping is invisible to
// golden results.
//
// CountingSource deliberately does NOT implement rand.Source64: if it
// did, Rand.Uint64 would consume one native draw where the Int63-only
// path consumes two, and the draw count would stop being a complete
// description of the stream position independent of which Rand methods
// were called.
package detrand

import "math/rand"

// CountingSource wraps a seeded rand.Source and counts raw Int63 draws.
// The zero value is unusable; call Seed (or NewCountingSource) first.
type CountingSource struct {
	src   rand.Source
	seed  int64
	draws uint64
}

// NewCountingSource returns a counting wrapper around
// rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed), seed: seed}
}

// Int63 draws from the wrapped source and advances the position.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Seed reseeds the wrapped source in place and rewinds the position to
// zero. No allocation: the underlying rand.Source reseeds itself.
func (s *CountingSource) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	if s.src == nil {
		s.src = rand.NewSource(seed)
		return
	}
	s.src.Seed(seed)
}

// Draws returns the stream position: the number of raw draws taken
// since the last Seed.
func (s *CountingSource) Draws() uint64 { return s.draws }

// SeekTo moves the stream position to target draws after the seed.
// Rewinding reseeds and replays from the start; fast-forwarding just
// burns draws from the current position. Cost is O(distance replayed);
// zero allocations either way.
func (s *CountingSource) SeekTo(target uint64) {
	if s.draws > target {
		s.Seed(s.seed)
	}
	for s.draws < target {
		s.Int63()
	}
}
