package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/teletrace"
)

// Config parameterizes a Runner. The zero value is a sensible default:
// GOMAXPROCS workers, 3 attempts per cell, 10 ms base backoff, no
// wall-clock deadline, no journal.
type Config struct {
	// Workers bounds concurrent trials. <=0 means GOMAXPROCS.
	Workers int
	// MaxAttempts is the per-cell attempt budget. <=0 means 3.
	MaxAttempts int
	// BackoffBase is the sleep before the first retry; it doubles per
	// attempt with deterministic ±25% jitter. <=0 means 10 ms.
	BackoffBase time.Duration
	// BackoffMax caps a single backoff sleep. <=0 means 2 s.
	BackoffMax time.Duration
	// TrialTimeout is the wall-clock deadline per attempt. 0 disables
	// it (the simulator's own MaxCycles watchdog still applies). A
	// trial past its deadline is abandoned: its goroutine is leaked
	// deliberately — the cycle watchdog bounds how long it can live.
	TrialTimeout time.Duration
	// JournalPath appends one JSONL record per completed cell. Empty
	// disables journaling (and therefore resume).
	JournalPath string
	// Resume skips cells that already have a terminal journal record
	// (ok or failed), replaying their recorded outcome.
	Resume bool
	// StopAfter aborts the campaign after N newly executed cells — a
	// deterministic stand-in for a mid-campaign kill, used by tests
	// and the CI resume check. 0 means run to completion.
	StopAfter int
	// Injections are fault injections matched against full cell IDs.
	Injections []Injection
	// Metrics, when non-nil, is the campaign registry: every trial gets
	// a fresh per-trial registry (Trial.Metrics), whose snapshot is
	// attached to the outcome, journaled, and absorbed into this
	// registry. Nil disables per-trial telemetry (Trial.Metrics is nil,
	// which instrumented components treat as detached).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, wraps every cell and attempt in teletrace
	// spans: a cell span (root, or a child of Cell.Trace when the
	// distributed coordinator propagated a context) with one attempt
	// span per try, retry/backoff/resume events, and the per-trial
	// registry armed so histogram exemplars carry the trace ID. Nil
	// disables tracing at a one-branch cost per emit site.
	Tracer *teletrace.Tracer
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

func (c Config) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return 10 * time.Millisecond
	}
	return c.BackoffBase
}

func (c Config) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return 2 * time.Second
	}
	return c.BackoffMax
}

// Cell is one independent unit of a sweep. Run must derive every bit
// of randomness from t.Seed (not shared state) — that is the
// determinism contract that makes results identical regardless of
// worker count, and lets a retry perturb the seed meaningfully. The
// returned value must be JSON-marshalable; it becomes the journaled,
// resumable result of the cell.
type Cell struct {
	ID   string
	Seed int64
	Run  func(t *Trial) (any, error)
	// Trace is the remote parent context for the cell's spans (a
	// distributed coordinator's cell trace, parsed off the lease RPC
	// header). The zero value starts a fresh trace when the runner has
	// a tracer, so single-process campaigns trace too.
	Trace teletrace.Context
}

// PostMortemer is anything that can snapshot itself when a trial dies.
// *cpu.CPU implements it.
type PostMortemer interface {
	PostMortem() cpu.PostMortem
}

// Trial is the per-attempt context handed to a cell's Run.
type Trial struct {
	Cell    string // full (namespaced) cell ID
	Attempt int    // 1-based
	Seed    int64  // cell seed, perturbed on retries

	// Metrics is the per-trial registry (nil when the campaign runs
	// without telemetry). Cells bind their machines to it; the harness
	// snapshots it into the outcome and the campaign rollup.
	Metrics *telemetry.Registry

	// Arena is the executing engine worker's struct-of-arrays ROB
	// arena. Observe hands it to any observed core (via AdoptArena), so
	// every trial a worker runs reuses one hot-state footprint instead
	// of allocating a fresh ROB per machine. Nil for trials run outside
	// an engine pool.
	Arena *cpu.Arena

	// Span is the attempt's span (nil when the runner has no tracer).
	// Cells may add events and child spans; Observe binds it onto the
	// simulated core so phase events (fast-forward jumps, watchdog
	// trips) land on it.
	Span *teletrace.Span

	mu sync.Mutex
	pm PostMortemer

	// armedPanic holds a pending injected-panic message; it detonates
	// after the cell's Run returns (see firePanic), so an Observed
	// machine's post-mortem carries the attempt's final pipeline events
	// instead of a pre-run blank.
	armedPanic string

	// inherited is the previous failed attempt's resume point (nil on
	// attempt 1); resumeSnap is the one this attempt registered. The
	// harness owns both and releases them when the cell terminates.
	inherited   *machine.Snapshot
	resumeSnap  *machine.Snapshot
	resumeCycle uint64
	sealed      bool
}

// SetResumePoint registers a whole-machine snapshot as the attempt's
// resume point. Ownership transfers to the harness: if the attempt
// fails with a retryable error, the next attempt receives it via
// ResumePoint and can restore instead of rebuilding from scratch; the
// cell's journal record notes the resume cycle. Registering again
// replaces (and releases) the previous point.
func (t *Trial) SetResumePoint(s *machine.Snapshot) {
	t.mu.Lock()
	if t.sealed { // attempt already timed out and was abandoned
		t.mu.Unlock()
		s.Release()
		return
	}
	old := t.resumeSnap
	t.resumeSnap = s
	t.resumeCycle = s.Cycle()
	t.mu.Unlock()
	t.Span.Eventf("resume-point", "snapshot at cycle %d", s.Cycle())
	if old != nil {
		old.Release()
	}
}

// ResumePoint returns the resume point registered by the previous
// failed attempt, or nil on a first attempt (or when none was set).
// The snapshot stays valid for the duration of this attempt; the
// harness releases it.
func (t *Trial) ResumePoint() *machine.Snapshot { return t.inherited }

// takeResumePoint seals the trial and hands its registered resume
// point to the harness. A SetResumePoint racing in from an abandoned
// (timed-out) attempt goroutine after sealing is released on the spot.
func (t *Trial) takeResumePoint() (*machine.Snapshot, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sealed = true
	s, cyc := t.resumeSnap, t.resumeCycle
	t.resumeSnap = nil
	return s, cyc
}

// firePanic detonates an armed panic injection; no-op when none is
// armed. Called in the trial goroutine after the cell's Run, inside the
// containment recover.
func (t *Trial) firePanic() {
	if t.armedPanic == "" {
		return
	}
	msg := t.armedPanic
	t.armedPanic = ""
	panic(msg)
}

// flightEnabler is the optional interface Observe uses to switch on the
// always-on flight recorder. *cpu.CPU implements it.
type flightEnabler interface {
	EnableFlightRecorder(n int) *cpu.FlightRecorder
}

// spanSetter is the optional interface Observe uses to bind the
// attempt's span onto the core so simulator phase events (fast-forward
// jumps, watchdog escalation) land on the trace. *cpu.CPU implements
// it.
type spanSetter interface {
	SetSpan(s *teletrace.Span)
}

// arenaAdopter is the optional interface Observe uses to move an
// observed core's ROB hot state into the engine worker's shared arena.
// *cpu.CPU implements it.
type arenaAdopter interface {
	AdoptArena(ar *cpu.Arena)
}

// Observe registers the core under test so that a contained panic can
// capture its post-mortem snapshot. Re-observing replaces the previous
// subject (observe the active core of multi-phase trials).
func (t *Trial) Observe(p PostMortemer) {
	// Every observed core gets a bounded flight recorder so a panic,
	// watchdog trip or deadline post-mortem carries the final pipeline
	// events. Enabling is idempotent and the ring is a fixed-size store
	// per event, cheap enough to leave on for every trial.
	if fe, ok := p.(flightEnabler); ok {
		fe.EnableFlightRecorder(0)
	}
	if ss, ok := p.(spanSetter); ok {
		ss.SetSpan(t.Span) // nil span = tracing off, still one branch on the core
	}
	if aa, ok := p.(arenaAdopter); ok && t.Arena != nil {
		aa.AdoptArena(t.Arena)
	}
	t.mu.Lock()
	t.pm = p
	t.mu.Unlock()
}

// postMortem snapshots the observed core, containing any panic the
// snapshot itself raises. Only called when the trial goroutine is no
// longer running the simulator (post-panic or post-return), so the
// read does not race.
func (t *Trial) postMortem() (out *cpu.PostMortem) {
	t.mu.Lock()
	p := t.pm
	t.mu.Unlock()
	if p == nil {
		return nil
	}
	defer func() { recover() }()
	pm := p.PostMortem()
	return &pm
}

// Outcome is the terminal result of one cell: a value, or a classified
// TrialError, or a skip marker when the campaign was interrupted
// before the cell started.
type Outcome struct {
	Index    int    // position in the input cell slice
	Cell     string // full (namespaced) ID
	Seed     int64
	Attempts int
	Class    Class
	Value    json.RawMessage // non-nil iff Class == ClassOK
	Err      *TrialError     // non-nil iff the cell failed
	Resumed  bool            // replayed from the journal
	Skipped  bool            // never started (campaign interrupted)
	// ResumeCycle is the machine cycle of the last snapshot resume
	// point the cell registered (0 when it never did).
	ResumeCycle uint64
	// TraceID is the cell's distributed trace (empty when the runner
	// had no tracer and the cell carried no remote context).
	TraceID string
	Elapsed time.Duration
	// Metrics is the final attempt's telemetry snapshot (nil when the
	// campaign runs without a Config.Metrics registry).
	Metrics *telemetry.Snapshot
}

// OK reports whether the cell produced a value.
func (o Outcome) OK() bool { return o.Class == ClassOK }

// Decode unmarshals the cell's value.
func (o Outcome) Decode(v any) error {
	if !o.OK() {
		if o.Err != nil {
			return o.Err
		}
		return fmt.Errorf("harness: cell %s has no value (%s)", o.Cell, o.Class)
	}
	return json.Unmarshal(o.Value, v)
}

// Report summarizes one Sweep. Outcomes are in input order regardless
// of scheduling, so result aggregation is deterministic across worker
// counts.
type Report struct {
	Name     string
	Outcomes []Outcome
	// Interrupted is true when StopAfter tripped before every cell
	// ran; the journal makes the campaign resumable.
	Interrupted bool
}

// Failures returns the classified errors of failed cells, input order.
func (r *Report) Failures() []*TrialError {
	var out []*TrialError
	for _, o := range r.Outcomes {
		if o.Err != nil {
			out = append(out, o.Err)
		}
	}
	return out
}

// Completed counts cells with a terminal outcome (ok or failed).
func (r *Report) Completed() int {
	n := 0
	for _, o := range r.Outcomes {
		if !o.Skipped {
			n++
		}
	}
	return n
}

// ExitCode maps the report onto the exit-code taxonomy: interrupted
// campaigns win (they are resumable, not failed), then the worst
// failure class, then 0.
func (r *Report) ExitCode() int {
	if r.Interrupted {
		return ExitInterrupted
	}
	rank := func(code int) int {
		switch code {
		case ExitPanic:
			return 3
		case ExitTimeout:
			return 2
		case ExitError:
			return 1
		}
		return 0
	}
	code := ExitOK
	for _, o := range r.Outcomes {
		if o.Err == nil {
			continue
		}
		if c := exitFor(o.Err.Class); rank(c) > rank(code) {
			code = c
		}
	}
	return code
}

// Err summarizes the sweep as a single error, or nil when every cell
// produced a value.
func (r *Report) Err() error {
	fails := r.Failures()
	if r.Interrupted {
		return fmt.Errorf("harness: sweep %s interrupted after %d/%d cells (resumable)",
			r.Name, r.Completed(), len(r.Outcomes))
	}
	if len(fails) == 0 {
		return nil
	}
	return fmt.Errorf("harness: sweep %s: %d/%d cells failed (first: %v)",
		r.Name, len(fails), len(r.Outcomes), fails[0])
}

// Collect decodes the values of successful cells in input order —
// failed or skipped cells are recorded gaps, not list entries.
func Collect[T any](rep *Report) ([]T, error) {
	var out []T
	for _, o := range rep.Outcomes {
		if !o.OK() {
			continue
		}
		var v T
		if err := json.Unmarshal(o.Value, &v); err != nil {
			return nil, fmt.Errorf("harness: decoding cell %s: %w", o.Cell, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Runner executes sweeps under one campaign configuration. A single
// Runner may serve several Sweep calls (e.g. every figure of a
// campaign) sharing one journal and one StopAfter budget.
type Runner struct {
	cfg Config

	mu       sync.Mutex
	executed int // newly executed cells, for StopAfter

	// pool is the batched trial engine every Sweep executes on. Workers
	// persist across sweeps, so their ROB arenas and telemetry
	// registries are warm for the whole campaign. Sweeps on one Runner
	// must not run concurrently with each other (worker arenas are
	// exclusive to one trial at a time).
	poolOnce sync.Once
	pool     *engine.Pool

	loadOnce  sync.Once
	loadErr   error
	journal   *Journal
	resumed   map[string]Record
	loadWarns []string

	prog progressState
}

// enginePool lazily builds the runner's trial engine.
func (r *Runner) enginePool() *engine.Pool {
	r.poolOnce.Do(func() {
		r.pool = engine.New(engine.Config{Workers: r.cfg.Workers})
	})
	return r.pool
}

// New validates cfg and builds a Runner.
func New(cfg Config) (*Runner, error) {
	if cfg.Resume && cfg.JournalPath == "" {
		return nil, fmt.Errorf("harness: -resume needs a journal path")
	}
	for _, in := range cfg.Injections {
		if in.Kind == InjectHang && cfg.TrialTimeout <= 0 {
			return nil, fmt.Errorf("harness: hang injection %q requires a trial timeout", in.Pattern)
		}
	}
	return &Runner{cfg: cfg}, nil
}

// Default returns a journal-less Runner with default pool and retry
// settings — the drop-in engine for library callers that just want
// containment and parallelism.
func Default() *Runner {
	r, _ := New(Config{})
	return r
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// ensureLoaded opens the journal (append) and, for resume, indexes its
// terminal records.
func (r *Runner) ensureLoaded() error {
	r.loadOnce.Do(func() {
		if r.cfg.JournalPath == "" {
			return
		}
		if r.cfg.Resume {
			recs, warns, err := ReadRecords(r.cfg.JournalPath)
			if err != nil {
				r.loadErr = err
				return
			}
			r.resumed = recs
			r.loadWarns = warns
		}
		j, err := OpenJournal(r.cfg.JournalPath)
		if err != nil {
			r.loadErr = err
			return
		}
		r.journal = j
	})
	return r.loadErr
}

// Close flushes and closes the journal, if any.
func (r *Runner) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.journal == nil {
		return nil
	}
	return r.journal.Close()
}

// JournalWarnings reports non-fatal problems found while indexing the
// resume journal — truncated or corrupt lines that were skipped. Only
// populated after the first Sweep (when the journal is actually read).
func (r *Runner) JournalWarnings() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loadWarns
}

// stopRequested reports whether the StopAfter budget is spent.
func (r *Runner) stopRequested() bool {
	if r.cfg.StopAfter <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed >= r.cfg.StopAfter
}

func (r *Runner) noteExecuted() {
	r.mu.Lock()
	r.executed++
	r.mu.Unlock()
}

// Sweep runs every cell on the worker pool and returns the report.
// Cell IDs are namespaced as "name/id" in the journal and injection
// matching. The returned error is infrastructural (journal I/O,
// duplicate IDs) — per-cell failures live in the report.
func (r *Runner) Sweep(name string, cells []Cell) (*Report, error) {
	if err := r.ensureLoaded(); err != nil {
		return nil, err
	}
	full := func(c Cell) string {
		if name == "" {
			return c.ID
		}
		return name + "/" + c.ID
	}
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if c.Run == nil {
			return nil, fmt.Errorf("harness: cell %s has no Run", full(c))
		}
		if seen[full(c)] {
			return nil, fmt.Errorf("harness: duplicate cell ID %s", full(c))
		}
		seen[full(c)] = true
	}

	rep := &Report{Name: name, Outcomes: make([]Outcome, len(cells))}
	type job struct {
		i int
		c Cell
	}
	var jobs []job
	resumedN := 0
	for i, c := range cells {
		id := full(c)
		if rec, ok := r.resumed[id]; ok {
			rep.Outcomes[i] = rec.Outcome(i)
			resumedN++
			continue
		}
		rep.Outcomes[i] = Outcome{Index: i, Cell: id, Seed: c.Seed, Skipped: true}
		jobs = append(jobs, job{i, c})
	}
	r.prog.addSweep(len(jobs), resumedN)

	pool := r.enginePool()
	pool.Run(len(jobs), func(w *engine.Worker, k int) {
		if r.stopRequested() {
			return // leave the Skipped marker in place
		}
		j := jobs[k]
		o := r.runCell(w, full(j.c), j.i, j.c)
		rep.Outcomes[j.i] = o // distinct index per worker claim
		r.noteExecuted()
	})
	// Per-worker telemetry was recorded synchronization-free during the
	// sweep; fold it into the campaign registry exactly once.
	pool.Drain(r.cfg.Metrics)

	for _, o := range rep.Outcomes {
		if o.Skipped {
			rep.Interrupted = true
			break
		}
	}
	return rep, nil
}

// runCell drives one cell through its attempt budget on engine worker
// w. A resume point registered by one attempt is handed to the next
// and released when the cell reaches a terminal outcome.
func (r *Runner) runCell(w *engine.Worker, id string, index int, c Cell) Outcome {
	start := time.Now() //simlint:wallclock per-cell elapsed is genuine wall time
	maxA := r.cfg.maxAttempts()
	var te *TrialError
	var lastSnap *telemetry.Snapshot
	var resume *machine.Snapshot
	var resumeCycle uint64

	// The cell span roots (or, distributed, continues) the cell's
	// trace; every attempt is a child. The trace ID outlives the spans:
	// it is stamped on the outcome, the journal record and the
	// per-trial registry's exemplars.
	cellSpan := r.cfg.Tracer.StartSpan("harness/cell", c.Trace)
	cellSpan.SetAttr("cell", id)
	cellSpan.SetAttr("seed", fmt.Sprintf("%d", c.Seed))
	traceID := ""
	if ctx := cellSpan.Context(); ctx.Valid() {
		traceID = ctx.Trace.String()
	} else if c.Trace.Valid() {
		// No local tracer but a propagated context: journal records and
		// exemplars still link to the coordinator's trace.
		traceID = c.Trace.Trace.String()
	}
	defer cellSpan.End()
	defer func() {
		if resume != nil {
			resume.Release()
		}
	}()
	for attempt := 1; attempt <= maxA; attempt++ {
		seed := c.Seed
		if attempt > 1 {
			seed = PerturbSeed(c.Seed, attempt)
		}
		span := cellSpan.StartChild("harness/attempt")
		span.SetAttr("attempt", fmt.Sprintf("%d", attempt))
		span.SetAttr("seed", fmt.Sprintf("%d", seed))
		if attempt > 1 {
			span.Eventf("retry-seed", "seed perturbed %d -> %d", c.Seed, seed)
		}
		if resume != nil {
			span.Eventf("resume", "inheriting snapshot from cycle %d", resumeCycle)
		}
		t := &Trial{Cell: id, Attempt: attempt, Seed: seed, inherited: resume, Span: span,
			Arena: w.Arena()}
		if r.cfg.Metrics != nil {
			t.Metrics = telemetry.NewRegistry()
			if traceID != "" {
				t.Metrics.SetTraceContext(traceID)
			}
		}
		attemptStart := time.Now() //simlint:wallclock trial latency is genuine wall time
		v, err := r.attempt(c, t, id)
		attemptMS := float64(time.Since(attemptStart)) / float64(time.Millisecond) //simlint:wallclock trial latency is genuine wall time
		if next, cyc := t.takeResumePoint(); next != nil {
			if resume != nil {
				resume.Release()
			}
			resume, resumeCycle = next, cyc
		}
		snap := r.rollupTrial(w, t, attempt, attemptMS, traceID)
		if err == nil {
			raw, merr := json.Marshal(v)
			if merr == nil {
				span.End()
				o := Outcome{Index: index, Cell: id, Seed: c.Seed, Attempts: attempt,
					Class: ClassOK, Value: raw,
					ResumeCycle: resumeCycle,
					TraceID:     traceID,
					Elapsed:     time.Since(start), //simlint:wallclock per-cell elapsed is genuine wall time
					Metrics:     snap}
				r.record(o)
				r.prog.noteDone(o)
				return o
			}
			err = fmt.Errorf("harness: marshaling cell value: %w", merr)
		}
		te = intoTrialError(err, t)
		span.SetErrorString(fmt.Sprintf("%s: %s", te.Class, te.Msg))
		span.End()
		lastSnap = snap
		if !te.Class.Retryable() || attempt == maxA {
			break
		}
		d := backoff(r.cfg, c.Seed, attempt)
		cellSpan.Eventf("backoff", "%v before attempt %d (%s)", d, attempt+1, te.Class)
		time.Sleep(d)
	}
	cellSpan.SetErrorString(fmt.Sprintf("%s after %d attempts: %s", te.Class, te.Attempt, te.Msg))
	o := Outcome{Index: index, Cell: id, Seed: c.Seed, Attempts: te.Attempt,
		Class: te.Class, Err: te,
		ResumeCycle: resumeCycle,
		TraceID:     traceID,
		Elapsed:     time.Since(start), //simlint:wallclock per-cell elapsed is genuine wall time
		Metrics:     lastSnap}
	r.record(o)
	r.prog.noteDone(o)
	return o
}

// rollupTrial snapshots a trial's registry, absorbs it into the
// executing worker's registry, and stamps the harness's own trial
// counters plus the trial-latency histogram (exemplar-linked to the
// cell's trace, so the slowest bucket on /metrics names the trace to
// open). The worker registry is private to the trial, so all of this
// is synchronization-free; Sweep drains the workers into the campaign
// registry once at the end of the batch. The snapshot reflects the
// work the attempt actually did, even when the attempt failed —
// partial work is exactly what a post-mortem wants.
func (r *Runner) rollupTrial(w *engine.Worker, t *Trial, attempt int, ms float64, traceID string) *telemetry.Snapshot {
	if r.cfg.Metrics == nil {
		return nil
	}
	reg := w.Metrics
	reg.Counter("harness_attempts_total", "trial attempts executed").Inc()
	if attempt > 1 {
		reg.Counter("harness_retries_total", "attempts beyond the first").Inc()
	}
	reg.Histogram("harness_trial_latency_ms", "wall-clock latency of one trial attempt",
		telemetry.TrialLatencyBuckets()).ObserveExemplar(ms, traceID)
	if t.Metrics == nil {
		return nil
	}
	snap := t.Metrics.Snapshot()
	reg.Absorb(snap)
	return &snap
}

// attempt executes one attempt with panic containment and, when
// configured, a wall-clock deadline.
func (r *Runner) attempt(c Cell, t *Trial, id string) (any, error) {
	run := func() (v any, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &TrialError{
					Cell: t.Cell, Class: ClassPanic, Attempt: t.Attempt, Seed: t.Seed,
					Err: fmt.Errorf("panic: %v", p), Msg: fmt.Sprintf("panic: %v", p),
					Stack: string(debug.Stack()), Post: t.postMortem(),
				}
			}
		}()
		fireInjections(r.cfg.Injections, id, t)
		v, err = c.Run(t)
		// An armed panic injection detonates here, after the cell did its
		// work, so the post-mortem of an Observed machine is meaningful.
		t.firePanic()
		return v, err
	}
	if r.cfg.TrialTimeout <= 0 {
		return run()
	}
	type res struct {
		v   any
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := run()
		ch <- res{v, err}
	}()
	timer := time.NewTimer(r.cfg.TrialTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-timer.C:
		// The trial goroutine is abandoned, still running: do NOT
		// snapshot its core (that would race); the cycle watchdog
		// bounds its remaining lifetime.
		return nil, &TrialError{
			Cell: t.Cell, Class: ClassDeadline, Attempt: t.Attempt, Seed: t.Seed,
			Err: context.DeadlineExceeded,
			Msg: fmt.Sprintf("wall-clock deadline %v exceeded (trial abandoned)", r.cfg.TrialTimeout),
		}
	}
}

// record journals a terminal outcome; journal I/O failures are sticky
// on the runner but do not fail the cell.
func (r *Runner) record(o Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.journal == nil {
		return
	}
	if err := r.journal.Append(RecordOf(o)); err != nil && r.loadErr == nil {
		r.loadErr = err
	}
}

// intoTrialError normalizes an attempt error into a classified
// TrialError, pulling the post-mortem out of a watchdog error when one
// is attached.
func intoTrialError(err error, t *Trial) *TrialError {
	var te *TrialError
	if errors.As(err, &te) {
		return te
	}
	te = &TrialError{Cell: t.Cell, Class: Classify(err), Attempt: t.Attempt,
		Seed: t.Seed, Err: err, Msg: err.Error()}
	var we *cpu.WatchdogError
	if errors.As(err, &we) {
		te.Post = &we.Post
	}
	if te.Post == nil && te.Class == ClassTimeout {
		// The attempt returned, so the trial goroutine is done and the
		// observed core is quiescent.
		te.Post = t.postMortem()
	}
	return te
}

// PerturbSeed derives the retry seed for an attempt (1-based): a
// splitmix64-style mix so consecutive attempts land in unrelated parts
// of seed space, deterministically. Exported because the distributed
// campaign coordinator applies the same perturbation policy when it
// re-leases a cell after a content failure (internal/campaign).
func PerturbSeed(seed int64, attempt int) int64 {
	z := uint64(seed) + uint64(attempt)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// backoff returns the exponential, jittered sleep before retrying
// attempt (1-based attempt that just failed).
func backoff(cfg Config, seed int64, attempt int) time.Duration {
	return Backoff(cfg.backoffBase(), cfg.backoffMax(), seed, attempt)
}

// Backoff computes the exponential, jittered delay before re-running
// a cell after its attempt-th failure (1-based): base doubled per
// attempt, capped at max, with deterministic ±25% jitter derived from
// the seed so synchronized workers desynchronize without a wall-clock
// or global-rand dependency. Shared with the campaign queue's requeue
// policy (internal/campaign).
func Backoff(base, max time.Duration, seed int64, attempt int) time.Duration {
	d := base << uint(attempt-1)
	if d > max || d <= 0 { // <<= also guards shift overflow
		d = max
	}
	j := PerturbSeed(seed, attempt)
	frac := float64(uint64(j)%1000)/1000*0.5 - 0.25
	return d + time.Duration(float64(d)*frac)
}
