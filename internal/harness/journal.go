package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cpu"
	"repro/internal/telemetry"
)

// Record is one JSONL journal line: the terminal outcome of a cell.
// Everything a resumed campaign needs to replay the cell without
// re-executing it — including failures, which resume as recorded gaps
// (delete the journal to re-attempt them).
//
// The type is exported because the format is shared infrastructure:
// the distributed campaign coordinator (internal/campaign) journals
// its queue state through exactly these records, so a killed-and-
// restarted campaignd resumes byte-identically the same way a
// single-process -resume does (docs/CAMPAIGND.md).
type Record struct {
	Kind     string          `json:"kind"` // "cell"
	Cell     string          `json:"cell"`
	Seed     int64           `json:"seed"`
	Attempts int             `json:"attempts"`
	Class    Class           `json:"class"`
	Value    json.RawMessage `json:"value,omitempty"`
	Error    string          `json:"error,omitempty"`
	Stack    string          `json:"stack,omitempty"`
	Post     *cpu.PostMortem `json:"post,omitempty"`
	Elapsed  int64           `json:"elapsed_ms"`
	// TraceID is the distributed trace of the cell's final attempt
	// (teletrace; empty when tracing was off), linking the journal
	// record to its span tree on the coordinator's /traces explorer.
	TraceID string `json:"trace_id,omitempty"`
	// ResumeCycle is the machine cycle of the last snapshot resume
	// point the cell registered (see Trial.SetResumePoint); 0 when the
	// cell never checkpointed.
	ResumeCycle uint64 `json:"resume_cycle,omitempty"`
	// Metrics is the final attempt's telemetry snapshot (omitted when
	// the campaign ran without a metrics registry).
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// RecordKindCell is the Kind of a terminal cell record. Unknown kinds
// in a journal are skipped on read, so the format is extensible.
const RecordKindCell = "cell"

// RecordOf builds the journal record for a terminal outcome.
func RecordOf(o Outcome) Record {
	rec := Record{
		Kind:        RecordKindCell,
		Cell:        o.Cell,
		Seed:        o.Seed,
		Attempts:    o.Attempts,
		Class:       o.Class,
		Value:       o.Value,
		Elapsed:     o.Elapsed.Milliseconds(),
		TraceID:     o.TraceID,
		ResumeCycle: o.ResumeCycle,
		Metrics:     o.Metrics,
	}
	if o.Err != nil {
		rec.Error = o.Err.Msg
		rec.Stack = o.Err.Stack
		rec.Post = o.Err.Post
	}
	return rec
}

// Outcome reconstitutes the journaled record as a resumed Outcome at
// the given position of the cell slice.
func (rec Record) Outcome(index int) Outcome {
	o := Outcome{
		Index:       index,
		Cell:        rec.Cell,
		Seed:        rec.Seed,
		Attempts:    rec.Attempts,
		Class:       rec.Class,
		Value:       rec.Value,
		Resumed:     true,
		TraceID:     rec.TraceID,
		ResumeCycle: rec.ResumeCycle,
		Metrics:     rec.Metrics,
	}
	if rec.Class != ClassOK {
		o.Err = &TrialError{
			Cell: rec.Cell, Class: rec.Class, Attempt: rec.Attempts, Seed: rec.Seed,
			Err: fmt.Errorf("%s", rec.Error), Msg: rec.Error,
			Stack: rec.Stack, Post: rec.Post,
		}
	}
	return o
}

// Journal appends records to a JSONL file, one flushed line per
// completed cell so a kill -9 loses at most the in-flight record.
type Journal struct {
	f *os.File
}

// OpenJournal opens (creating parents as needed) a journal for append.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: journal dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one record as a single line. Concurrent appends must be
// serialized by the caller.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("harness: marshaling journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("harness: writing journal: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }

// ReadRecords indexes a journal's terminal records by cell ID (last
// record wins). A missing file is an empty campaign.
//
// Crash tolerance: a journal is appended one line per cell, so a kill
// mid-write leaves at most one truncated trailing line. Such a line —
// or any line that is not valid JSON — is skipped with a warning
// instead of failing the resume; the cell it would have recorded is
// simply re-executed. Records of unknown kinds are skipped silently
// (forward compatibility).
func ReadRecords(path string) (map[string]Record, []string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]Record{}, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("harness: reading journal: %w", err)
	}
	out := map[string]Record{}
	var warns []string
	lines := bytes.Split(data, []byte("\n"))
	offset := 0 // byte offset of the current line's first byte
	for i, line := range lines {
		lineStart := offset
		offset += len(line) + 1 // +1 for the split-away '\n'
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// A chunk not terminated by '\n' can only be the file's final
		// bytes: the signature of a crash mid-append.
		torn := i == len(lines)-1
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// The byte offset and (when salvageable) the cell key let an
			// operator dd/grep straight to the damaged record instead of
			// diffing the journal against the sweep by hand.
			loc := fmt.Sprintf("byte offset %d", lineStart)
			if cell := cellKeyOf(line); cell != "" {
				loc += fmt.Sprintf(", cell %q", cell)
			}
			if torn {
				warns = append(warns, fmt.Sprintf(
					"journal %s: truncated trailing record at %s skipped (crash mid-write): %v", path, loc, err))
			} else {
				warns = append(warns, fmt.Sprintf(
					"journal %s: corrupt line %d at %s skipped: %v", path, i+1, loc, err))
			}
			continue
		}
		if rec.Kind != RecordKindCell || rec.Cell == "" {
			continue
		}
		out[rec.Cell] = rec
	}
	return out, warns, nil
}

// cellKeyOf salvages the `"cell":"..."` key from a line that failed to
// parse as JSON — truncation usually eats the record's tail, and the
// cell key sits near the front. Returns "" when the key (or its
// closing quote) is gone too.
func cellKeyOf(line []byte) string {
	const marker = `"cell":"`
	i := bytes.Index(line, []byte(marker))
	if i < 0 {
		return ""
	}
	rest := line[i+len(marker):]
	// Cell names are sweep paths + content hashes: no escapes, so the
	// next bare quote terminates the key.
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return string(rest[:j])
}
