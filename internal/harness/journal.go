package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cpu"
	"repro/internal/telemetry"
)

// journalRecord is one JSONL line: the terminal outcome of a cell.
// Everything a resumed campaign needs to replay the cell without
// re-executing it — including failures, which resume as recorded gaps
// (delete the journal to re-attempt them).
type journalRecord struct {
	Kind     string          `json:"kind"` // "cell"
	Cell     string          `json:"cell"`
	Seed     int64           `json:"seed"`
	Attempts int             `json:"attempts"`
	Class    Class           `json:"class"`
	Value    json.RawMessage `json:"value,omitempty"`
	Error    string          `json:"error,omitempty"`
	Stack    string          `json:"stack,omitempty"`
	Post     *cpu.PostMortem `json:"post,omitempty"`
	Elapsed  int64           `json:"elapsed_ms"`
	// ResumeCycle is the machine cycle of the last snapshot resume
	// point the cell registered (see Trial.SetResumePoint); 0 when the
	// cell never checkpointed.
	ResumeCycle uint64 `json:"resume_cycle,omitempty"`
	// Metrics is the final attempt's telemetry snapshot (omitted when
	// the campaign ran without a metrics registry).
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// outcome reconstitutes the journaled record as a resumed Outcome.
func (rec journalRecord) outcome(index int) Outcome {
	o := Outcome{
		Index:       index,
		Cell:        rec.Cell,
		Seed:        rec.Seed,
		Attempts:    rec.Attempts,
		Class:       rec.Class,
		Value:       rec.Value,
		Resumed:     true,
		ResumeCycle: rec.ResumeCycle,
		Metrics:     rec.Metrics,
	}
	if rec.Class != ClassOK {
		o.Err = &TrialError{
			Cell: rec.Cell, Class: rec.Class, Attempt: rec.Attempts, Seed: rec.Seed,
			Err: fmt.Errorf("%s", rec.Error), Msg: rec.Error,
			Stack: rec.Stack, Post: rec.Post,
		}
	}
	return o
}

// journal appends records to a JSONL file, one flushed line per
// completed cell so a kill -9 loses at most the in-flight record.
type journal struct {
	f *os.File
}

func openJournal(path string) (*journal, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: journal dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one cell record. Caller holds the runner lock.
func (j *journal) append(o Outcome) error {
	rec := journalRecord{
		Kind:        "cell",
		Cell:        o.Cell,
		Seed:        o.Seed,
		Attempts:    o.Attempts,
		Class:       o.Class,
		Value:       o.Value,
		Elapsed:     o.Elapsed.Milliseconds(),
		ResumeCycle: o.ResumeCycle,
		Metrics:     o.Metrics,
	}
	if o.Err != nil {
		rec.Error = o.Err.Msg
		rec.Stack = o.Err.Stack
		rec.Post = o.Err.Post
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("harness: marshaling journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("harness: writing journal: %w", err)
	}
	return nil
}

func (j *journal) close() error { return j.f.Close() }

// readJournal indexes a journal's terminal records by cell ID (last
// record wins). A missing file is an empty campaign; a torn final line
// (killed mid-write) is ignored.
func readJournal(path string) (map[string]journalRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]journalRecord{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("harness: reading journal: %w", err)
	}
	defer f.Close()
	out := map[string]journalRecord{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn or foreign line
		}
		if rec.Kind != "cell" || rec.Cell == "" {
			continue
		}
		out[rec.Cell] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: scanning journal: %w", err)
	}
	return out, nil
}
