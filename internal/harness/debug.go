package harness

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Progress is a point-in-time view of a campaign: how many cells exist,
// how many finished (and how), and a naive rate-based ETA. Served live
// on the debug endpoint and usable directly by drivers.
type Progress struct {
	Cells   int `json:"cells"`   // newly executed cells scheduled so far
	Done    int `json:"done"`    // cells with a terminal outcome
	OK      int `json:"ok"`      // … that produced a value
	Gapped  int `json:"gapped"`  // … that failed terminally (recorded gaps)
	Retried int `json:"retried"` // … that needed more than one attempt
	Resumed int `json:"resumed"` // cells replayed from the journal

	ElapsedMS int64 `json:"elapsed_ms"`
	// ETAMS extrapolates the remaining wall time from the mean pace of
	// completed cells; -1 until the first cell completes.
	ETAMS int64 `json:"eta_ms"`
}

// progressState is the runner's internal progress bookkeeping.
type progressState struct {
	mu      sync.Mutex
	started time.Time
	cells   int
	done    int
	ok      int
	gapped  int
	retried int
	resumed int
}

// addSweep registers a sweep's cells: jobs newly scheduled, resumed
// replayed from the journal.
func (p *progressState) addSweep(jobs, resumed int) {
	p.mu.Lock()
	if p.started.IsZero() {
		p.started = time.Now() //simlint:wallclock progress/ETA is genuine wall time
	}
	p.cells += jobs
	p.resumed += resumed
	p.mu.Unlock()
}

// noteDone records a terminal outcome.
func (p *progressState) noteDone(o Outcome) {
	p.mu.Lock()
	p.done++
	if o.OK() {
		p.ok++
	} else {
		p.gapped++
	}
	if o.Attempts > 1 {
		p.retried++
	}
	p.mu.Unlock()
}

// snapshot renders the current Progress.
func (p *progressState) snapshot() Progress {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := Progress{
		Cells: p.cells, Done: p.done, OK: p.ok, Gapped: p.gapped,
		Retried: p.retried, Resumed: p.resumed, ETAMS: -1,
	}
	if !p.started.IsZero() {
		elapsed := time.Since(p.started) //simlint:wallclock progress/ETA is genuine wall time
		out.ElapsedMS = elapsed.Milliseconds()
		if p.done > 0 && p.cells > p.done {
			perCell := elapsed / time.Duration(p.done)
			out.ETAMS = (perCell * time.Duration(p.cells-p.done)).Milliseconds()
		} else if p.done > 0 {
			out.ETAMS = 0
		}
	}
	return out
}

// Progress returns the campaign's live progress.
func (r *Runner) Progress() Progress { return r.prog.snapshot() }

// DebugServer is the opt-in live-introspection endpoint of a campaign:
//
//	/progress     — Progress as JSON
//	/metrics      — the campaign registry in Prometheus text format
//	/debug/vars   — expvar (includes harness_progress)
//	/debug/pprof/ — the standard pprof handlers
//
// It binds a local listener (use "127.0.0.1:0" for an ephemeral port)
// and serves until Close.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// expvar.Publish panics on duplicate names; publish the harness var
// once and route it through a swappable pointer so every ServeDebug
// call (and test) can rebind it.
var (
	expvarOnce   sync.Once
	expvarMu     sync.Mutex
	expvarRunner *Runner
)

func publishExpvar(r *Runner) {
	expvarMu.Lock()
	expvarRunner = r
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("harness_progress", expvar.Func(func() any {
			expvarMu.Lock()
			cur := expvarRunner
			expvarMu.Unlock()
			if cur == nil {
				return nil
			}
			return cur.Progress()
		}))
	})
}

// ServeDebug starts the debug endpoint on addr. The campaign keeps
// running whether or not anything ever connects.
func (r *Runner) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("harness: debug listener: %w", err)
	}
	publishExpvar(r)

	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Progress())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := r.cfg.Metrics
		if reg == nil {
			http.Error(w, "campaign has no metrics registry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		telemetry.WritePrometheus(w, reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound address (resolves ":0" to the real port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// URL returns the http base URL of the endpoint.
func (d *DebugServer) URL() string { return "http://" + d.Addr() }

// Close stops the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
