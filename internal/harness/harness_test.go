package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// val is the cell payload used throughout the tests.
type val struct {
	ID   string `json:"id"`
	Seed int64  `json:"seed"`
	N    int    `json:"n"`
}

// okCells builds n trivial deterministic cells.
func okCells(n int) []Cell {
	var cells []Cell
	for i := 0; i < n; i++ {
		i := i
		cells = append(cells, Cell{
			ID:   fmt.Sprintf("c%d", i),
			Seed: int64(100 + i),
			Run: func(t *Trial) (any, error) {
				return val{ID: t.Cell, Seed: t.Seed, N: i * i}, nil
			},
		})
	}
	return cells
}

func mustRunner(t *testing.T, cfg Config) *Runner {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	collect := func(workers int) []val {
		r := mustRunner(t, Config{Workers: workers})
		vals, err := func() ([]val, error) {
			rep, err := r.Sweep("det", okCells(16))
			if err != nil {
				return nil, err
			}
			return Collect[val](rep)
		}()
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	serial := collect(1)
	parallel := collect(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("results differ across worker counts:\n 1: %+v\n 8: %+v", serial, parallel)
	}
	if len(serial) != 16 {
		t.Fatalf("got %d values, want 16", len(serial))
	}
	for i, v := range serial {
		// Input order, original seeds on the first attempt.
		if v.ID != fmt.Sprintf("det/c%d", i) || v.Seed != int64(100+i) {
			t.Fatalf("value %d out of order or reseeded: %+v", i, v)
		}
	}
}

// core builds a tiny real CPU so panic post-mortems snapshot something.
func core(t *testing.T) *cpu.CPU {
	t.Helper()
	h := memsys.MustNew(memsys.DefaultConfig(7), mem.NewMemory())
	return cpu.MustNew(cpu.DefaultConfig(), h, branch.New(branch.DefaultConfig()), undo.NewUnsafe(), noise.None{})
}

func TestPanicContainedWithPostMortem(t *testing.T) {
	r := mustRunner(t, Config{Workers: 2, MaxAttempts: 1})
	prog := isa.NewBuilder().Const(1, 3).Halt().MustBuild()
	cells := []Cell{
		{ID: "boom", Seed: 1, Run: func(tr *Trial) (any, error) {
			c := core(t)
			if _, err := c.RunChecked(prog); err != nil {
				return nil, err
			}
			tr.Observe(c)
			panic("deliberate")
		}},
		{ID: "fine", Seed: 2, Run: func(tr *Trial) (any, error) {
			return val{ID: tr.Cell}, nil
		}},
	}
	rep, err := r.Sweep("pan", cells)
	if err != nil {
		t.Fatal(err)
	}
	fails := rep.Failures()
	if len(fails) != 1 {
		t.Fatalf("got %d failures, want 1", len(fails))
	}
	f := fails[0]
	if f.Class != ClassPanic || f.Cell != "pan/boom" {
		t.Fatalf("failure misclassified: %+v", f)
	}
	if f.Stack == "" {
		t.Error("panic failure carries no stack")
	}
	if f.Post == nil {
		t.Fatal("panic failure carries no post-mortem despite Observe")
	}
	if !f.Post.Halted || f.Post.Retired == 0 {
		t.Errorf("post-mortem does not reflect the observed core: %+v", f.Post)
	}
	// The healthy sibling cell still completed.
	vals, err := Collect[val](rep)
	if err != nil || len(vals) != 1 || vals[0].ID != "pan/fine" {
		t.Fatalf("sibling cell lost: vals=%v err=%v", vals, err)
	}
	if rep.ExitCode() != ExitPanic {
		t.Errorf("exit code = %d, want %d", rep.ExitCode(), ExitPanic)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 3, BackoffBase: time.Microsecond})
	attempts := 0
	var seeds []int64
	cells := []Cell{{ID: "flaky", Seed: 42, Run: func(tr *Trial) (any, error) {
		attempts++
		seeds = append(seeds, tr.Seed)
		if tr.Attempt < 3 {
			return nil, Transient(errors.New("noise"))
		}
		return val{Seed: tr.Seed}, nil
	}}}
	rep, err := r.Sweep("retry", cells)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("ran %d attempts, want 3", attempts)
	}
	o := rep.Outcomes[0]
	if !o.OK() || o.Attempts != 3 {
		t.Fatalf("outcome = %+v, want ok on attempt 3", o)
	}
	if seeds[0] != 42 {
		t.Errorf("first attempt seed = %d, want the cell seed 42", seeds[0])
	}
	if seeds[1] == 42 || seeds[2] == 42 || seeds[1] == seeds[2] {
		t.Errorf("retry seeds not perturbed: %v", seeds)
	}
}

func TestRetryExhaustion(t *testing.T) {
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 2, BackoffBase: time.Microsecond})
	attempts := 0
	cells := []Cell{{ID: "dead", Seed: 7, Run: func(tr *Trial) (any, error) {
		attempts++
		return nil, Transient(errors.New("always"))
	}}}
	rep, err := r.Sweep("exhaust", cells)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("ran %d attempts, want 2", attempts)
	}
	f := rep.Outcomes[0].Err
	if f == nil || f.Class != ClassTransient || f.Attempt != 2 {
		t.Fatalf("failure = %+v, want transient on attempt 2", f)
	}
}

func TestDeterministicErrorNotRetried(t *testing.T) {
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 3})
	attempts := 0
	cells := []Cell{{ID: "det", Seed: 7, Run: func(tr *Trial) (any, error) {
		attempts++
		return nil, errors.New("same inputs, same failure")
	}}}
	rep, err := r.Sweep("noretry", cells)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("deterministic error retried: %d attempts", attempts)
	}
	if f := rep.Outcomes[0].Err; f == nil || f.Class != ClassError {
		t.Fatalf("failure = %+v, want ClassError", f)
	}
	if rep.ExitCode() != ExitError {
		t.Errorf("exit code = %d, want %d", rep.ExitCode(), ExitError)
	}
}

func TestWatchdogClassifiedTimeout(t *testing.T) {
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 300
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 2, BackoffBase: time.Microsecond})
	loop := isa.NewBuilder().Label("spin").Jmp("spin").MustBuild()
	cells := []Cell{{ID: "hang", Seed: 3, Run: func(tr *Trial) (any, error) {
		h := memsys.MustNew(memsys.DefaultConfig(7), mem.NewMemory())
		c := cpu.MustNew(cfg, h, branch.New(branch.DefaultConfig()), undo.NewUnsafe(), noise.None{})
		tr.Observe(c)
		_, err := c.RunChecked(loop)
		return nil, err
	}}}
	rep, err := r.Sweep("wd", cells)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Outcomes[0].Err
	if f == nil || f.Class != ClassTimeout {
		t.Fatalf("failure = %+v, want ClassTimeout", f)
	}
	if f.Attempt != 2 {
		t.Errorf("watchdog trip should be retryable: final attempt %d, want 2", f.Attempt)
	}
	if f.Post == nil || !f.Post.TimedOut {
		t.Fatalf("timeout failure has no usable post-mortem: %+v", f.Post)
	}
	if !errors.Is(f, cpu.ErrWatchdog) {
		t.Error("TrialError does not unwrap to cpu.ErrWatchdog")
	}
	if rep.ExitCode() != ExitTimeout {
		t.Errorf("exit code = %d, want %d", rep.ExitCode(), ExitTimeout)
	}
}

func TestDeadlineClassified(t *testing.T) {
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 1, TrialTimeout: 20 * time.Millisecond})
	block := make(chan struct{})
	defer close(block)
	cells := []Cell{{ID: "stuck", Seed: 1, Run: func(tr *Trial) (any, error) {
		<-block
		return nil, nil
	}}}
	rep, err := r.Sweep("ddl", cells)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Outcomes[0].Err
	if f == nil || f.Class != ClassDeadline {
		t.Fatalf("failure = %+v, want ClassDeadline", f)
	}
	if f.Post != nil {
		t.Error("deadline failure must not snapshot a live goroutine's core")
	}
	if !errors.Is(f, context.DeadlineExceeded) {
		t.Error("deadline TrialError does not unwrap to context.DeadlineExceeded")
	}
}

func TestJournalRoundTripAndResume(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.jsonl")

	executed := 0
	mk := func(fail bool) []Cell {
		return []Cell{
			{ID: "a", Seed: 1, Run: func(tr *Trial) (any, error) {
				executed++
				return val{ID: tr.Cell, N: 1}, nil
			}},
			{ID: "b", Seed: 2, Run: func(tr *Trial) (any, error) {
				executed++
				if fail {
					return nil, errors.New("recorded gap")
				}
				return val{ID: tr.Cell, N: 2}, nil
			}},
		}
	}

	r1 := mustRunner(t, Config{Workers: 1, JournalPath: jpath})
	rep1, err := r1.Sweep("j", mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	if executed != 2 {
		t.Fatalf("first campaign executed %d cells, want 2", executed)
	}

	// The journal holds both terminal records with their classes.
	recs, _, err := ReadRecords(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal has %d records, want 2", len(recs))
	}
	if recs["j/a"].Class != ClassOK || recs["j/b"].Class != ClassError {
		t.Fatalf("journal classes: a=%s b=%s", recs["j/a"].Class, recs["j/b"].Class)
	}
	if recs["j/b"].Error == "" {
		t.Error("failed record lost its error message")
	}

	// Resume skips both: ok cells replay their value, failed cells stay
	// recorded gaps (never silently re-run).
	executed = 0
	r2 := mustRunner(t, Config{Workers: 1, JournalPath: jpath, Resume: true})
	rep2, err := r2.Sweep("j", mk(false))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if executed != 0 {
		t.Fatalf("resume re-executed %d cells, want 0", executed)
	}
	for i, o := range rep2.Outcomes {
		if !o.Resumed {
			t.Errorf("outcome %d not marked resumed", i)
		}
	}
	v1, _ := Collect[val](rep1)
	v2, _ := Collect[val](rep2)
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("resumed values differ: %v vs %v", v1, v2)
	}
	if f := rep2.Outcomes[1].Err; f == nil || f.Class != ClassError {
		t.Fatalf("resumed gap lost its classification: %+v", f)
	}
}

func TestStopAfterInterruptsAndResumeCompletes(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.jsonl")

	r1 := mustRunner(t, Config{Workers: 1, JournalPath: jpath, StopAfter: 3})
	rep1, err := r1.Sweep("s", okCells(8))
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if !rep1.Interrupted {
		t.Fatal("StopAfter did not interrupt the campaign")
	}
	if rep1.ExitCode() != ExitInterrupted {
		t.Fatalf("exit code = %d, want %d", rep1.ExitCode(), ExitInterrupted)
	}
	done := rep1.Completed()
	if done >= 8 || done < 3 {
		t.Fatalf("completed %d cells, want at least StopAfter but not all", done)
	}

	r2 := mustRunner(t, Config{Workers: 4, JournalPath: jpath, Resume: true})
	rep2, err := r2.Sweep("s", okCells(8))
	if err != nil {
		t.Fatal(err)
	}
	r2.Close()
	if rep2.Interrupted {
		t.Fatal("resumed campaign still interrupted")
	}
	vals, err := Collect[val](rep2)
	if err != nil {
		t.Fatal(err)
	}
	// Full, in-order results identical to an uninterrupted campaign.
	ref, _ := Collect[val](mustSweep(t, mustRunner(t, Config{Workers: 1}), "s", okCells(8)))
	if !reflect.DeepEqual(vals, ref) {
		t.Fatalf("resumed campaign differs from uninterrupted run:\n%v\n%v", vals, ref)
	}
}

func mustSweep(t *testing.T, r *Runner, name string, cells []Cell) *Report {
	t.Helper()
	rep, err := r.Sweep(name, cells)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestInjectionsParseAndFire(t *testing.T) {
	if _, err := ParseInjections("panic"); err == nil {
		t.Error("bare kind accepted")
	}
	if _, err := ParseInjections("explode:x"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseInjections("panic:x:0"); err == nil {
		t.Error("attempt 0 accepted")
	}
	injs, err := ParseInjections(" panic:inj/a , hang:inj/b:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 2 || injs[0].Kind != InjectPanic || injs[1].Attempts != 2 {
		t.Fatalf("parsed %+v", injs)
	}

	// Hang injections demand a wall-clock deadline.
	if _, err := New(Config{Injections: []Injection{{Kind: InjectHang, Pattern: "*"}}}); err == nil {
		t.Error("hang injection accepted without a trial timeout")
	}

	// A panic injection fires on attempt 1 only: the retry rescues the
	// cell — the transient-crash model the CI smoke run relies on.
	r := mustRunner(t, Config{
		Workers: 1, MaxAttempts: 3, BackoffBase: time.Microsecond,
		Injections: []Injection{{Kind: InjectPanic, Pattern: "inj/c0"}},
	})
	rep := mustSweep(t, r, "inj", okCells(1))
	o := rep.Outcomes[0]
	if !o.OK() || o.Attempts != 2 {
		t.Fatalf("injected panic not rescued by retry: %+v (err %v)", o, o.Err)
	}

	// A hang injection fires on every attempt and exhausts into a
	// classified deadline gap.
	rh := mustRunner(t, Config{
		Workers: 1, MaxAttempts: 2, BackoffBase: time.Microsecond,
		TrialTimeout: 20 * time.Millisecond,
		Injections:   []Injection{{Kind: InjectHang, Pattern: "inj/c0"}},
	})
	reph := mustSweep(t, rh, "inj", okCells(1))
	f := reph.Outcomes[0].Err
	if f == nil || f.Class != ClassDeadline || f.Attempt != 2 {
		t.Fatalf("hang injection outcome = %+v, want deadline after 2 attempts", f)
	}
}

func TestDuplicateCellIDsRejected(t *testing.T) {
	r := mustRunner(t, Config{Workers: 1})
	cells := []Cell{
		{ID: "x", Seed: 1, Run: func(*Trial) (any, error) { return 1, nil }},
		{ID: "x", Seed: 2, Run: func(*Trial) (any, error) { return 2, nil }},
	}
	if _, err := r.Sweep("dup", cells); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestTornJournalLineIgnored(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.jsonl")
	good, _ := json.Marshal(Record{Kind: "cell", Cell: "t/a", Class: ClassOK, Value: json.RawMessage(`{"n":1}`), Attempts: 1})
	if err := os.WriteFile(jpath, append(append(good, '\n'), []byte(`{"kind":"cell","cell":"t/b","cl`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadRecords(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs["t/a"].Class != ClassOK {
		t.Fatalf("torn journal parsed as %+v", recs)
	}
}

func TestBackoffBoundedAndJittered(t *testing.T) {
	cfg := Config{BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond}
	prev := time.Duration(-1)
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		d := backoff(cfg, 99, attempt)
		if d <= 0 || d > 40*time.Millisecond+40*time.Millisecond/4 {
			t.Fatalf("attempt %d backoff %v out of bounds", attempt, d)
		}
		if prev >= 0 && d != prev {
			same = false
		}
		prev = d
	}
	if same {
		t.Error("backoff never varied — jitter missing")
	}
	if backoff(cfg, 99, 2) != backoff(cfg, 99, 2) {
		t.Error("backoff not deterministic for identical inputs")
	}
}
