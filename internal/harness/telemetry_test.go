package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/telemetry"
)

func TestCampaignMetricsRollup(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := mustRunner(t, Config{Workers: 2, Metrics: reg})
	cells := okCells(4)
	// One cell records its own trial-local metric; the rollup must
	// absorb it into the campaign registry.
	cells = append(cells, Cell{
		ID:   "instrumented",
		Seed: 7,
		Run: func(tr *Trial) (any, error) {
			if tr.Metrics == nil {
				t.Error("trial has no per-trial registry despite Config.Metrics")
				return val{}, nil
			}
			tr.Metrics.Counter("trial_widgets_total", "widgets").Add(3)
			return val{ID: tr.Cell}, nil
		},
	})
	rep, err := r.Sweep("roll", cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures()) != 0 {
		t.Fatalf("unexpected failures: %+v", rep.Failures())
	}

	snap := reg.Snapshot()
	if got := snap.Counters["harness_attempts_total"]; got != 5 {
		t.Errorf("harness_attempts_total = %d, want 5", got)
	}
	if got := snap.Counters["trial_widgets_total"]; got != 3 {
		t.Errorf("trial_widgets_total = %d, want 3 (trial registry not absorbed)", got)
	}

	// Each successful outcome carries its own trial snapshot.
	for _, o := range rep.Outcomes {
		if o.Metrics == nil {
			t.Fatalf("outcome %s has no metrics snapshot", o.Cell)
		}
	}
}

func TestRetriedAttemptsAllAbsorbed(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 3, BackoffBase: time.Microsecond, Metrics: reg})
	tries := 0
	cells := []Cell{{
		ID:   "flaky",
		Seed: 1,
		Run: func(tr *Trial) (any, error) {
			tr.Metrics.Counter("attempt_work_total", "work per attempt").Inc()
			tries++
			if tries < 3 {
				return nil, Transient(fmt.Errorf("try again"))
			}
			return val{ID: tr.Cell}, nil
		},
	}}
	rep, err := r.Sweep("retry", cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures()) != 0 {
		t.Fatalf("cell did not recover: %+v", rep.Failures())
	}
	snap := reg.Snapshot()
	// Every attempt's partial work rolls up, not just the winner's.
	if got := snap.Counters["attempt_work_total"]; got != 3 {
		t.Errorf("attempt_work_total = %d, want 3", got)
	}
	if got := snap.Counters["harness_retries_total"]; got != 2 {
		t.Errorf("harness_retries_total = %d, want 2", got)
	}
	// The outcome snapshot is the final attempt's only.
	if got := rep.Outcomes[0].Metrics.Counters["attempt_work_total"]; got != 1 {
		t.Errorf("outcome snapshot attempt_work_total = %d, want 1", got)
	}
}

func TestJournalCarriesMetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	reg := telemetry.NewRegistry()
	r := mustRunner(t, Config{Workers: 1, JournalPath: path, Metrics: reg})
	cells := []Cell{{
		ID:   "j",
		Seed: 1,
		Run: func(tr *Trial) (any, error) {
			tr.Metrics.Counter("journaled_total", "x").Inc()
			return val{ID: tr.Cell}, nil
		},
	}}
	if _, err := r.Sweep("jm", cells); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume from the journal: the replayed outcome must still carry the
	// snapshot, and the campaign registry must re-absorb nothing new
	// (replay is bookkeeping, not re-execution).
	reg2 := telemetry.NewRegistry()
	r2 := mustRunner(t, Config{Workers: 1, JournalPath: path, Resume: true, Metrics: reg2})
	rep, err := r2.Sweep("jm", cells)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Metrics == nil {
		t.Fatal("resumed outcome lost its metrics snapshot")
	}
	if got := o.Metrics.Counters["journaled_total"]; got != 1 {
		t.Errorf("resumed snapshot journaled_total = %d, want 1", got)
	}
}

func TestProgressCountsAndETA(t *testing.T) {
	r := mustRunner(t, Config{Workers: 2})
	if p := r.Progress(); p.Done != 0 || p.ETAMS != -1 {
		t.Fatalf("fresh runner progress = %+v", p)
	}
	if _, err := r.Sweep("prog", okCells(6)); err != nil {
		t.Fatal(err)
	}
	p := r.Progress()
	if p.Cells != 6 || p.Done != 6 || p.OK != 6 || p.Gapped != 0 {
		t.Fatalf("progress after sweep = %+v", p)
	}
	if p.ETAMS != 0 {
		t.Errorf("finished campaign ETA = %d, want 0", p.ETAMS)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("campaign_total", "c").Add(9)
	r := mustRunner(t, Config{Workers: 1, Metrics: reg})
	if _, err := r.Sweep("dbg", okCells(3)); err != nil {
		t.Fatal(err)
	}
	d, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(d.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if p.Done != 3 || p.OK != 3 {
		t.Errorf("/progress = %+v", p)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(body, "campaign_total 9") {
		t.Errorf("/metrics missing campaign counter:\n%s", body)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}
	if !strings.Contains(body, "harness_progress") {
		t.Error("/debug/vars missing harness_progress")
	}

	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}

	// A second runner may rebind the expvar (no duplicate-publish panic)
	// and a registry-less runner 404s on /metrics.
	r2 := mustRunner(t, Config{Workers: 1})
	d2, err := r2.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	resp, err := http.Get(d2.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("registry-less /metrics = %d, want 404", resp.StatusCode)
	}
}

func TestInjectedPanicPostMortemHasEvents(t *testing.T) {
	injs, err := ParseInjections("panic:inj/boom")
	if err != nil {
		t.Fatal(err)
	}
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 1, Injections: injs})
	cells := []Cell{{
		ID:   "boom",
		Seed: 1,
		Run: func(tr *Trial) (any, error) {
			c := core(t)
			tr.Observe(c)
			c.Run(isa.NewBuilder().Const(1, 1).AddI(1, 1, 2).Halt().MustBuild())
			return val{ID: tr.Cell}, nil
		},
	}}
	rep, err := r.Sweep("inj", cells)
	if err != nil {
		t.Fatal(err)
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Class != ClassPanic {
		t.Fatalf("expected one panic failure, got %+v", fails)
	}
	// The injected panic is deferred until after Run, so the observed
	// machine's post-mortem carries the attempt's real pipeline events.
	if fails[0].Post == nil || len(fails[0].Post.Events) == 0 {
		t.Fatal("injected-panic post-mortem has no flight-recorder events")
	}
}

func TestObserveEnablesFlightRecorder(t *testing.T) {
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 1})
	cells := []Cell{{
		ID:   "boom",
		Seed: 1,
		Run: func(tr *Trial) (any, error) {
			c := core(t)
			// Observe first: it enables the flight recorder, so the run's
			// events land in the ring before the panic.
			tr.Observe(c)
			c.Run(isa.NewBuilder().Const(1, 1).AddI(1, 1, 2).Halt().MustBuild())
			panic("after observe")
		},
	}}
	rep, err := r.Sweep("flight", cells)
	if err != nil {
		t.Fatal(err)
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Post == nil {
		t.Fatalf("expected one post-mortem failure, got %+v", fails)
	}
	if len(fails[0].Post.Events) == 0 {
		t.Fatal("post-mortem has no flight-recorder events: Observe did not enable the ring")
	}
}
