package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRecords appends n complete records and returns the file bytes.
func writeRecords(t *testing.T, path string, n int) []byte {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := Record{
			Kind: RecordKindCell, Cell: "trunc/c" + string(rune('a'+i)),
			Seed: int64(100 + i), Attempts: 1, Class: ClassOK,
			Value: json.RawMessage(`{"v":` + string(rune('0'+i)) + `}`),
		}
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReadRecordsTruncatedAtEveryOffset simulates a crash mid-append:
// the journal is truncated at every byte offset inside the final
// record, and resume must never fail — it either skips the torn line
// with a warning (re-executing that one cell) or, when the truncation
// happens to retain the whole final record sans newline, replays it.
func TestReadRecordsTruncatedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.jsonl")
	full := writeRecords(t, ref, 3)

	// Offset of the last record's first byte.
	body := full[:len(full)-1] // drop trailing '\n'
	lastStart := 0
	for i := len(body) - 1; i >= 0; i-- {
		if body[i] == '\n' {
			lastStart = i + 1
			break
		}
	}
	lastLine := body[lastStart:] // the final record, no newline

	for cut := lastStart; cut <= len(full); cut++ {
		path := filepath.Join(dir, "cut.jsonl")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, warns, err := ReadRecords(path)
		if err != nil {
			t.Fatalf("cut at %d: resume failed: %v", cut, err)
		}
		// The retained tail parses iff it is the complete record (the
		// only valid-JSON prefix of a JSON object is the whole object).
		tail := full[lastStart:cut]
		wholeRetained := len(tail) >= len(lastLine)
		wantRecs, wantWarn := 2, true
		if wholeRetained {
			wantRecs, wantWarn = 3, false
		}
		if cut == lastStart { // clean truncation at the record boundary
			wantWarn = false
		}
		if len(recs) != wantRecs {
			t.Fatalf("cut at %d: got %d records, want %d (warns=%v)", cut, len(recs), wantRecs, warns)
		}
		if wantWarn != (len(warns) > 0) {
			t.Fatalf("cut at %d: warnings = %v, want warning=%v", cut, warns, wantWarn)
		}
		for _, w := range warns {
			if !strings.Contains(w, "truncated trailing record") {
				t.Fatalf("cut at %d: unexpected warning %q", cut, w)
			}
		}
		// Surviving records must be intact, never partial.
		for id, rec := range recs {
			if rec.Class != ClassOK || len(rec.Value) == 0 {
				t.Fatalf("cut at %d: corrupt surviving record %s: %+v", cut, id, rec)
			}
		}
	}
}

// TestReadRecordsCorruptInteriorLine covers non-trailing corruption: a
// garbage line in the middle of the journal is skipped with a warning
// and every intact record still resumes.
func TestReadRecordsCorruptInteriorLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	full := writeRecords(t, path, 2)
	lines := strings.SplitAfter(string(full), "\n")
	mangled := lines[0] + "{\"kind\":\"cell\",garbage\n" + lines[1]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, warns, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "corrupt line 2") {
		t.Fatalf("warnings = %v, want one corrupt-line warning", warns)
	}
}

// TestRunnerResumeSurvivesTornJournal drives the hardening end to end:
// a Runner resuming from a journal whose final record was torn by a
// crash re-executes only that cell, reports the warning, and the
// campaign completes.
func TestRunnerResumeSurvivesTornJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")

	cells := []Cell{
		{ID: "a", Seed: 1, Run: func(t *Trial) (any, error) { return map[string]int{"v": 1}, nil }},
		{ID: "b", Seed: 2, Run: func(t *Trial) (any, error) { return map[string]int{"v": 2}, nil }},
	}
	r1, err := New(Config{JournalPath: path, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Sweep("torn", cells); err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	ran := 0
	for i := range cells {
		orig := cells[i].Run
		cells[i].Run = func(t *Trial) (any, error) { ran++; return orig(t) }
	}
	r2, err := New(Config{JournalPath: path, Resume: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r2.Sweep("torn", cells)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
	if ran != 1 {
		t.Fatalf("re-executed %d cells, want exactly the torn one", ran)
	}
	if ws := r2.JournalWarnings(); len(ws) != 1 || !strings.Contains(ws[0], "truncated trailing record") {
		t.Fatalf("journal warnings = %v, want one truncation warning", ws)
	}
	if !rep.Outcomes[0].Resumed || rep.Outcomes[1].Resumed {
		t.Fatalf("resume pattern wrong: %+v", rep.Outcomes)
	}
}
