package harness

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/fuzz"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/noise"
	"repro/internal/undo"
)

// buildResumeMachine assembles the standard single-core machine the
// resume-point tests checkpoint.
func buildResumeMachine(t *testing.T, seed int64) *cpu.CPU {
	t.Helper()
	g := fuzz.MustNew(fuzz.DefaultConfig())
	m := mem.NewMemory()
	g.InitMemory(seed, m)
	hier := memsys.MustNew(memsys.DefaultConfig(seed), m)
	core, err := cpu.New(cpu.DefaultConfig(), hier, branch.New(branch.DefaultConfig()),
		undo.NewCleanupSpec(), noise.None{})
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// TestResumePointCarriesAcrossAttempts runs a cell that checkpoints a
// warm machine, fails once, and on retry restores from the inherited
// resume point — the machine must come back at the exact checkpointed
// cycle, and the journal record must note the resume cycle.
func TestResumePointCarriesAcrossAttempts(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 3,
		BackoffBase: time.Microsecond, JournalPath: jpath})

	g := fuzz.MustNew(fuzz.DefaultConfig())
	var wantCycle uint64
	var resumedAt uint64
	cells := []Cell{{ID: "warm", Seed: 5, Run: func(tr *Trial) (any, error) {
		if tr.Attempt == 1 {
			if tr.ResumePoint() != nil {
				t.Error("attempt 1 has an inherited resume point")
			}
			core := buildResumeMachine(t, 5)
			core.Run(g.Program(5)) // expensive warm phase
			snap, err := machine.Of(core).Snapshot()
			if err != nil {
				return nil, err
			}
			wantCycle = snap.Cycle()
			tr.SetResumePoint(snap)
			return nil, Transient(errors.New("die after checkpoint"))
		}
		snap := tr.ResumePoint()
		if snap == nil {
			return nil, errors.New("retry attempt lost the resume point")
		}
		core := buildResumeMachine(t, 5)
		if err := machine.Of(core).Restore(snap); err != nil {
			return nil, err
		}
		resumedAt = core.Cycle()
		return val{Seed: tr.Seed}, nil
	}}}

	rep, err := r.Sweep("rp", cells)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if !o.OK() || o.Attempts != 2 {
		t.Fatalf("outcome = %+v, want ok on attempt 2", o)
	}
	if resumedAt != wantCycle {
		t.Errorf("restored machine at cycle %d, checkpoint was %d", resumedAt, wantCycle)
	}
	if o.ResumeCycle != wantCycle {
		t.Errorf("outcome resume cycle = %d, want %d", o.ResumeCycle, wantCycle)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadRecords(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got := recs["rp/warm"].ResumeCycle; got != wantCycle {
		t.Errorf("journal resume cycle = %d, want %d", got, wantCycle)
	}
}

// TestResumePointReplacedAndReleased registers two resume points in one
// attempt; the second must replace the first, and the cell's COW page
// references must all be gone once the cell terminates.
func TestResumePointReplacedAndReleased(t *testing.T) {
	r := mustRunner(t, Config{Workers: 1, MaxAttempts: 1})
	g := fuzz.MustNew(fuzz.DefaultConfig())
	var m *mem.Memory
	var secondCycle uint64
	cells := []Cell{{ID: "two", Seed: 8, Run: func(tr *Trial) (any, error) {
		core := buildResumeMachine(t, 8)
		m = core.Hierarchy().Memory()
		core.Run(g.Program(8))
		s1, err := machine.Of(core).Snapshot()
		if err != nil {
			return nil, err
		}
		tr.SetResumePoint(s1)
		core.Run(g.Program(9))
		s2, err := machine.Of(core).Snapshot()
		if err != nil {
			return nil, err
		}
		secondCycle = s2.Cycle()
		tr.SetResumePoint(s2)
		return val{Seed: tr.Seed}, nil
	}}}
	rep, err := r.Sweep("rel", cells)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if !o.OK() {
		t.Fatalf("outcome = %+v, want ok", o)
	}
	if o.ResumeCycle != secondCycle {
		t.Errorf("outcome resume cycle = %d, want the second point %d", o.ResumeCycle, secondCycle)
	}
	if got := m.SharedPageCount(); got != 0 {
		t.Errorf("%d pages still shared after the cell terminated", got)
	}
}
