package harness

import (
	"fmt"
	"path"
	"strconv"
	"strings"
)

// Injection kinds. Panic injections fire on early attempts only (so a
// healthy retry path rescues the cell — a transient-crash model); hang
// injections fire on every attempt (a deterministic-hang model that
// must exhaust the deadline and retries into a recorded gap).
const (
	InjectPanic = "panic"
	InjectHang  = "hang"
)

// Injection is one scripted fault, matched against full (namespaced)
// cell IDs with path.Match globs. Used by tests and the CI smoke sweep
// to prove containment, classification, and resume without real bugs.
type Injection struct {
	Kind    string
	Pattern string
	// Attempts is the last attempt the fault fires on. 0 means the
	// kind's default: 1 for panic (transient), all attempts for hang.
	Attempts int
}

func (in Injection) lastAttempt() int {
	if in.Attempts > 0 {
		return in.Attempts
	}
	if in.Kind == InjectPanic {
		return 1
	}
	return 1 << 30
}

func (in Injection) matches(id string) bool {
	ok, err := path.Match(in.Pattern, id)
	if err != nil {
		return in.Pattern == id
	}
	return ok
}

// ParseInjections parses a comma-separated injection spec:
//
//	kind:glob[:attempts]  e.g. "panic:figure2/n1-*,hang:figure12/stream/unsafe"
func ParseInjections(s string) ([]Injection, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Injection
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("harness: bad injection %q (want kind:glob[:attempts])", part)
		}
		in := Injection{Kind: fields[0], Pattern: fields[1]}
		if in.Kind != InjectPanic && in.Kind != InjectHang {
			return nil, fmt.Errorf("harness: unknown injection kind %q", in.Kind)
		}
		if _, err := path.Match(in.Pattern, "probe"); err != nil {
			return nil, fmt.Errorf("harness: bad injection glob %q: %w", in.Pattern, err)
		}
		if len(fields) == 3 {
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("harness: bad injection attempt count %q", fields[2])
			}
			in.Attempts = n
		}
		out = append(out, in)
	}
	return out, nil
}

// fireInjections applies matching faults inside the trial goroutine,
// before the cell's Run. A hang blocks forever — the wall-clock
// deadline (required at config validation) abandons the goroutine. A
// panic is only armed here: it detonates after the cell's Run returns
// (Trial.firePanic), so a cell that Observed its machine yields a
// post-mortem with the attempt's real flight-recorder events rather
// than a pre-run blank.
func fireInjections(injs []Injection, id string, t *Trial) {
	for _, in := range injs {
		if !in.matches(id) || t.Attempt > in.lastAttempt() {
			continue
		}
		switch in.Kind {
		case InjectPanic:
			t.armedPanic = fmt.Sprintf("injected fault: panic in %s (attempt %d)", id, t.Attempt)
		case InjectHang:
			select {}
		}
	}
}
