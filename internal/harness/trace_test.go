package harness

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/teletrace"
)

func traceTestRunner(t *testing.T, cfg Config, store *teletrace.Store) *Runner {
	t.Helper()
	cfg.Tracer = teletrace.New(teletrace.Config{Service: "test", Store: store, Seed: 99})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTracedSweepSpansAndTraceID(t *testing.T) {
	store := teletrace.NewStore(0)
	reg := telemetry.NewRegistry()
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	r := traceTestRunner(t, Config{Workers: 1, Metrics: reg, JournalPath: journal}, store)

	rep, err := r.Sweep("fig", []Cell{{ID: "a", Seed: 7, Run: func(tr *Trial) (any, error) {
		if tr.Span == nil {
			t.Error("traced trial has no span")
		}
		tr.Span.Event("measure", "one round")
		return 1.0, nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.TraceID == "" || len(o.TraceID) != 16 {
		t.Fatalf("outcome trace ID = %q, want 16 hex digits", o.TraceID)
	}

	// The journal record carries the trace ID and round-trips it.
	recs, _, err := ReadRecords(journal)
	if err != nil {
		t.Fatal(err)
	}
	rec := recs["fig/a"]
	if rec.TraceID != o.TraceID {
		t.Fatalf("journal trace ID %q != outcome %q", rec.TraceID, o.TraceID)
	}
	if back := rec.Outcome(0); back.TraceID != o.TraceID {
		t.Fatalf("resumed outcome lost the trace ID: %q", back.TraceID)
	}

	// Cell span + attempt span, causally linked, with the cell's event.
	tid, err := teletrace.ParseTraceID(o.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	spans := store.Trace(tid)
	if len(spans) != 2 {
		t.Fatalf("stored %d spans, want cell+attempt", len(spans))
	}
	var cell, attempt teletrace.SpanData
	for _, d := range spans {
		switch d.Name {
		case "harness/cell":
			cell = d
		case "harness/attempt":
			attempt = d
		}
	}
	if cell.ID == 0 || attempt.Parent != cell.ID {
		t.Fatalf("attempt not a child of cell: %+v / %+v", cell, attempt)
	}
	if cell.Attrs["cell"] != "fig/a" {
		t.Fatalf("cell attrs: %+v", cell.Attrs)
	}
	if len(attempt.Events) != 1 || attempt.Events[0].Name != "measure" {
		t.Fatalf("trial events lost: %+v", attempt.Events)
	}

	// The campaign registry's trial-latency histogram links its worst
	// observation back to this trace.
	ex := reg.Snapshot().Histograms["harness_trial_latency_ms"].Exemplar
	if ex == nil || ex.TraceID != o.TraceID {
		t.Fatalf("trial-latency exemplar = %+v, want trace %s", ex, o.TraceID)
	}
}

func TestTracedRetrySpans(t *testing.T) {
	store := teletrace.NewStore(0)
	r := traceTestRunner(t, Config{Workers: 1, MaxAttempts: 3, BackoffBase: 1, BackoffMax: 1}, store)
	calls := 0
	rep, err := r.Sweep("fig", []Cell{{ID: "flaky", Seed: 1, Run: func(tr *Trial) (any, error) {
		calls++
		if calls < 3 {
			return nil, Transient(errors.New("blip"))
		}
		return "ok", nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcomes[0].OK() || rep.Outcomes[0].Attempts != 3 {
		t.Fatalf("outcome: %+v", rep.Outcomes[0])
	}
	spans := store.Spans()
	if len(spans) != 4 { // cell + 3 attempts
		t.Fatalf("stored %d spans, want 4", len(spans))
	}
	var retryEvents, backoffEvents, failedAttempts int
	for _, d := range spans {
		for _, ev := range d.Events {
			switch ev.Name {
			case "retry-seed":
				retryEvents++
				if !strings.Contains(ev.Detail, "perturbed") {
					t.Fatalf("retry event detail: %q", ev.Detail)
				}
			case "backoff":
				backoffEvents++
			}
		}
		if d.Name == "harness/attempt" && d.Error != "" {
			failedAttempts++
		}
	}
	if retryEvents != 2 || backoffEvents != 2 || failedAttempts != 2 {
		t.Fatalf("retry=%d backoff=%d failed=%d, want 2/2/2", retryEvents, backoffEvents, failedAttempts)
	}
}

func TestRemoteContextWithoutLocalTracer(t *testing.T) {
	// A worker with tracing disabled still propagates the coordinator's
	// trace ID into outcomes and journal records.
	r, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	remote := teletrace.Context{Trace: 0xabcd, Span: 0x1}
	rep, err := r.Sweep("fig", []Cell{{ID: "a", Seed: 1, Trace: remote,
		Run: func(tr *Trial) (any, error) { return 1, nil }}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Outcomes[0].TraceID; got != remote.Trace.String() {
		t.Fatalf("trace ID = %q, want propagated %q", got, remote.Trace.String())
	}
}

func TestUntracedSweepHasNoTraceID(t *testing.T) {
	r, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Sweep("fig", []Cell{{ID: "a", Seed: 1, Run: func(tr *Trial) (any, error) {
		if tr.Span != nil {
			t.Error("untraced trial got a span")
		}
		return 1, nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[0].TraceID != "" {
		t.Fatalf("untraced outcome has trace ID %q", rep.Outcomes[0].TraceID)
	}
}
