// Package harness is the resilient trial-execution layer every sweep
// routes through: it runs independent sweep cells on a bounded worker
// pool, contains panics, escalates the simulator watchdog into typed
// errors, retries transient failures with seed-perturbing backoff, and
// journals completed cells so an interrupted campaign resumes instead
// of restarting. One bad trial yields a recorded, classified gap —
// never a lost campaign.
//
// See docs/HARNESS.md for the error taxonomy, retry policy, journal
// format and resume semantics.
package harness

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cpu"
)

// Class partitions trial failures for retry policy, reporting and the
// process exit code.
type Class string

const (
	// ClassOK marks a successful journal record (never a TrialError).
	ClassOK Class = "ok"
	// ClassPanic is a contained panic inside the trial.
	ClassPanic Class = "panic"
	// ClassTimeout is the simulator's cycle-budget watchdog
	// (cpu.ErrWatchdog) — the trial ran but never converged.
	ClassTimeout Class = "timeout"
	// ClassDeadline is the harness's wall-clock deadline — the trial
	// goroutine was still running when its time budget lapsed.
	ClassDeadline Class = "deadline"
	// ClassTransient is an error explicitly marked retryable with
	// Transient (noise, flaky calibration, eviction-set verification).
	ClassTransient Class = "transient"
	// ClassError is any other (deterministic) trial error.
	ClassError Class = "error"
)

// Retryable reports whether a failure of this class is worth another
// attempt under a perturbed seed. Deterministic errors are not: the
// same inputs would fail the same way.
func (c Class) Retryable() bool {
	switch c {
	case ClassPanic, ClassTimeout, ClassDeadline, ClassTransient:
		return true
	default:
		// ClassOK never reaches retry; ClassError is deterministic.
		return false
	}
}

// Exit-code taxonomy for campaign drivers: a failed campaign exits
// with the code of its worst failure class so shell pipelines and CI
// can tell a hang from a crash from a plain error.
const (
	ExitOK          = 0
	ExitInfra       = 1 // I/O, journal, CSV — the harness itself failed
	ExitUsage       = 2 // bad flags / configuration
	ExitTimeout     = 3 // ≥1 cell exhausted retries on watchdog/deadline
	ExitPanic       = 4 // ≥1 cell exhausted retries on a panic
	ExitError       = 5 // ≥1 cell failed deterministically
	ExitInterrupted = 6 // campaign stopped early (StopAfter); resumable
)

// TrialError is the structured failure of one sweep cell: which cell,
// how it died, on which attempt, and — when the simulator was
// reachable — a post-mortem snapshot of the core.
type TrialError struct {
	Cell    string `json:"cell"`
	Class   Class  `json:"class"`
	Attempt int    `json:"attempt"` // attempt the final failure occurred on (1-based)
	Seed    int64  `json:"seed"`    // seed of that attempt

	Err   error  `json:"-"`
	Msg   string `json:"error"` // Err.Error(), for the journal
	Stack string `json:"stack,omitempty"`

	// Post is the simulator post-mortem: populated from the panicking
	// goroutine's observed core, or from the *cpu.WatchdogError the
	// trial returned. Nil when no core was observable (e.g. a
	// wall-clock deadline with the trial goroutine still live —
	// snapshotting a running core would race).
	Post *cpu.PostMortem `json:"post,omitempty"`
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("cell %s: %s (attempt %d): %s", e.Cell, e.Class, e.Attempt, e.Msg)
}

func (e *TrialError) Unwrap() error { return e.Err }

// transientError marks an error as retryable noise.
type transientError struct{ err error }

func (t *transientError) Error() string { return "transient: " + t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err so the harness classifies it as retryable noise
// rather than a deterministic failure.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is (or wraps) a Transient error.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Classify maps an arbitrary trial error onto the taxonomy.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassOK
	case IsTransient(err):
		return ClassTransient
	case errors.Is(err, cpu.ErrWatchdog):
		return ClassTimeout
	case errors.Is(err, context.DeadlineExceeded):
		return ClassDeadline
	}
	return ClassError
}

// exitFor maps a failure class to its campaign exit code.
func exitFor(c Class) int {
	switch c {
	case ClassOK:
		return ExitOK
	case ClassPanic:
		return ExitPanic
	case ClassTimeout, ClassDeadline:
		return ExitTimeout
	default:
		return ExitError
	}
}
