// Package loader loads and type-checks Go packages without depending on
// golang.org/x/tools. It shells out to `go list -deps -export -json`
// for package metadata and compiled export data (reusing the Go build
// cache), parses each target package's sources with comments, and
// type-checks them with the stdlib gc importer reading the export data
// of dependencies. The result carries everything an analysis pass
// needs: syntax, full types.Info, and the //simlint: suppression
// directives found in comments.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// DirectivePrefix introduces a suppression comment: //simlint:<name>
// silences diagnostics of that analyzer or category on the same line,
// or — for a comment alone on its line — on the next line.
const DirectivePrefix = "//simlint:"

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	GoFiles   []string // absolute paths, build-constraint filtered, no tests
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// directives maps filename -> line -> suppression names in force on
	// that line (including names declared on the preceding comment-only
	// line).
	directives map[string]map[int][]string
}

// PackagePath implements analysis.Target.
func (p *Package) PackagePath() string { return p.PkgPath }

// ASTFiles implements analysis.Target.
func (p *Package) ASTFiles() []*ast.File { return p.Syntax }

// FileSet implements analysis.Target.
func (p *Package) FileSet() *token.FileSet { return p.Fset }

// TypesPackage implements analysis.Target.
func (p *Package) TypesPackage() *types.Package { return p.Types }

// Info implements analysis.Target.
func (p *Package) Info() *types.Info { return p.TypesInfo }

// SuppressedAt implements analysis.Target.
func (p *Package) SuppressedAt(file string, line int, name string) bool {
	for _, n := range p.directives[file][line] {
		if n == name {
			return true
		}
	}
	return false
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a module root or any directory inside
// one), builds export data for the dependency graph, and type-checks
// every matched package from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	conf := types.Config{Importer: imp}

	var pkgs []*Package
	for _, lp := range targets {
		p := &Package{
			PkgPath:    lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Fset:       fset,
			directives: map[string]map[int][]string{},
		}
		for _, f := range lp.GoFiles {
			abs := filepath.Join(lp.Dir, f)
			af, err := parser.ParseFile(fset, abs, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", abs, err)
			}
			p.GoFiles = append(p.GoFiles, abs)
			p.Syntax = append(p.Syntax, af)
			p.directives[abs] = scanDirectives(fset, af)
		}
		p.TypesInfo = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		tp, err := conf.Check(lp.ImportPath, fset, p.Syntax, p.TypesInfo)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		p.Types = tp
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// scanDirectives extracts //simlint:<name> suppressions from a file's
// comments. A directive suppresses its own line; a comment group that
// stands alone (its line holds no other tokens, which is how Go
// attaches doc-style comments) also suppresses the line immediately
// after the group.
func scanDirectives(fset *token.FileSet, f *ast.File) map[int][]string {
	out := map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			// Accept both "//simlint:wallclock reason..." and
			// "//simlint:ignore wallclock reason..." spellings.
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			name := fields[0]
			if name == "ignore" {
				if len(fields) < 2 {
					continue
				}
				name = fields[1]
			}
			pos := fset.Position(c.Pos())
			out[pos.Line] = append(out[pos.Line], name)
			if pos.Column == 1 || startsLine(fset, f, c.Pos()) {
				out[pos.Line+1] = append(out[pos.Line+1], name)
			}
		}
	}
	return out
}

// startsLine reports whether the comment at pos is the first token on
// its line, i.e. a standalone directive that should cover the next
// line. Comments trailing code share the line with earlier tokens, so
// any declaration or statement beginning on the same line disqualifies.
func startsLine(fset *token.FileSet, f *ast.File, pos token.Pos) bool {
	line := fset.Position(pos).Line
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if p := fset.Position(n.Pos()); p.Line == line && n.Pos() < pos {
			if _, isFile := n.(*ast.File); !isFile {
				first = false
				return false
			}
		}
		return true
	})
	return first
}
