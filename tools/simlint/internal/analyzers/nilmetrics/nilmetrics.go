// Package nilmetrics enforces the internal/telemetry and
// internal/teletrace contract that a nil handle (*Counter, *Gauge,
// *Histogram, *Registry, *Tracer, *Span, *Store, ...) is a valid, free
// no-op: every exported pointer-receiver method must guard the
// receiver against nil before touching its fields, so detached
// instrumentation stays a one-branch cost instead of a panic in the
// middle of a sweep. Unexported helpers (called only behind a guard)
// are exempt.
package nilmetrics

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/simlint/internal/analysis"
)

// Analyzer is the nil-receiver-safety check for telemetry handles.
var Analyzer = &analysis.Analyzer{
	Name: "nilmetrics",
	Doc: "exported methods on telemetry handle types must nil-guard the " +
		"receiver before any field access",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			checkMethod(pass, fn)
		}
	}
	return nil
}

// inScope limits the analyzer to the telemetry and teletrace packages
// (and fixture packages laid out under directories of the same names).
func inScope(pkgPath string) bool {
	for _, seg := range []string{"telemetry", "teletrace"} {
		if pkgPath == seg ||
			strings.HasSuffix(pkgPath, "/"+seg) ||
			strings.Contains(pkgPath, "/"+seg+"/") {
			return true
		}
	}
	return false
}

func checkMethod(pass *analysis.Pass, fn *ast.FuncDecl) {
	recv := pass.ReceiverObject(fn)
	if recv == nil {
		return // unnamed receiver: the body cannot dereference it
	}
	if _, isPtr := recv.Type().(*types.Pointer); !isPtr {
		return // value receivers cannot be nil
	}

	access := firstFieldAccess(pass, fn.Body, recv)
	if access == token.NoPos {
		return
	}
	if guard := firstNilGuard(pass, fn.Body, recv); guard != token.NoPos && guard < access {
		return
	}
	pass.Reportf(fn.Name.Pos(), "nilmetrics",
		"exported method %s on handle type %s accesses receiver fields without a nil-receiver guard; nil handles must stay free no-ops",
		fn.Name.Name, recvTypeName(recv))
}

// firstFieldAccess returns the position of the lexically first receiver
// field access in body (method calls on the receiver are fine: they
// guard themselves).
func firstFieldAccess(pass *analysis.Pass, body *ast.BlockStmt, recv *types.Var) token.Pos {
	first := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !pass.UsesObject(sel.X, recv) {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			if first == token.NoPos || sel.Pos() < first {
				first = sel.Pos()
			}
		}
		return true
	})
	return first
}

// firstNilGuard returns the position of the first `recv == nil` /
// `recv != nil` comparison in body.
func firstNilGuard(pass *analysis.Pass, body *ast.BlockStmt, recv *types.Var) token.Pos {
	first := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		nilCmp := (pass.UsesObject(be.X, recv) && isNil(pass, be.Y)) ||
			(pass.UsesObject(be.Y, recv) && isNil(pass, be.X))
		if nilCmp && (first == token.NoPos || be.Pos() < first) {
			first = be.Pos()
		}
		return true
	})
	return first
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].IsNil()
}

func recvTypeName(recv *types.Var) string {
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "*" + n.Obj().Name()
	}
	return t.String()
}
