package nilmetrics

import (
	"testing"

	"repro/tools/simlint/internal/analysistest"
)

func TestBadFixtureFires(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/nilmetricsbad/telemetry")
}

func TestCleanFixtureSilent(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/nilmetricsgood/telemetry")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/telemetry":         true,
		"fixtures/nilmetricsbad/telemetry": true,
		"telemetry":                        true,
		"repro/internal/cpu":               false,
		"repro/internal/telemetrical":      false,
	} {
		if got := inScope(path); got != want {
			t.Errorf("inScope(%q) = %v, want %v", path, got, want)
		}
	}
}
