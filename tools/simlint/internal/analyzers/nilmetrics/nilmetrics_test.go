package nilmetrics

import (
	"testing"

	"repro/tools/simlint/internal/analysistest"
)

func TestBadFixtureFires(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/nilmetricsbad/telemetry")
}

func TestCleanFixtureSilent(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/nilmetricsgood/telemetry")
}

func TestBadTeletraceFixtureFires(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/nilmetricsbad/teletrace")
}

func TestCleanTeletraceFixtureSilent(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/nilmetricsgood/teletrace")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/telemetry":         true,
		"fixtures/nilmetricsbad/telemetry": true,
		"telemetry":                        true,
		"repro/internal/teletrace":         true,
		"fixtures/nilmetricsbad/teletrace": true,
		"teletrace":                        true,
		"repro/internal/cpu":               false,
		"repro/internal/telemetrical":      false,
		"repro/internal/teletracer":        false,
	} {
		if got := inScope(path); got != want {
			t.Errorf("inScope(%q) = %v, want %v", path, got, want)
		}
	}
}
