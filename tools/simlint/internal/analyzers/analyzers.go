// Package analyzers registers the simlint analyzer suite.
package analyzers

import (
	"repro/tools/simlint/internal/analysis"
	"repro/tools/simlint/internal/analyzers/determinism"
	"repro/tools/simlint/internal/analyzers/exhaustive"
	"repro/tools/simlint/internal/analyzers/nilmetrics"
	"repro/tools/simlint/internal/analyzers/seedflow"
	"repro/tools/simlint/internal/analyzers/typederr"
)

// All returns every simlint analyzer in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		exhaustive.Analyzer,
		nilmetrics.Analyzer,
		seedflow.Analyzer,
		typederr.Analyzer,
	}
}
