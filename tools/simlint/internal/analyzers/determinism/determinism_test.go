package determinism

import (
	"testing"

	"repro/tools/simlint/internal/analysistest"
)

func TestBadFixtureFires(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/determinism/bad")
}

func TestCleanFixtureSilent(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/determinism/clean")
}

func TestWallclockSuppression(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/determinism/allow")
}
