// Package determinism forbids the three ways bit-determinism per seed
// has historically broken in this simulator: wall-clock reads, the
// global math/rand generator, and map-iteration order escaping into
// simulation state or emitted output. The fuzz trace-hash property
// (PR 1) and the byte-identical -resume guarantee (PR 2) both depend on
// every run being a pure function of the seed; the Go compiler cannot
// see that invariant, so this analyzer does.
//
// Suppressions: //simlint:wallclock for genuine wall-clock uses
// (harness deadlines, debug endpoints), //simlint:rand and
// //simlint:rangemap for the rare deliberate exceptions.
//
// A fourth category, forkpurity, guards the snapshot subsystem
// (docs/SNAPSHOTS.md): functions in the fork family — Fork, Snapshot,
// Restore, SaveState, RestoreState, Checkpoint — must not read the
// wall clock or the global math/rand generator, because replayed
// state must be a pure function of captured state, never of when the
// replay runs. The category is deliberately distinct from wallclock:
// a //simlint:wallclock waiver does not license wall-clock reads
// inside fork-family code.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/simlint/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and map-iteration " +
		"order leaking into simulation state or emitted output",
	Run: run,
}

// wallclockFuncs are time-package functions that read the wall clock.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// globalRandFuncs are the package-level math/rand functions backed by
// the shared global Source; any use decouples a run from its seed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "IntN": true,
	"Uint32": true, "Uint64": true, "Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true, "N": true,
}

// forkFamily are the function names that implement whole-machine
// snapshot/restore (docs/SNAPSHOTS.md); their bodies must be pure.
var forkFamily = map[string]bool{
	"Fork": true, "Snapshot": true, "Restore": true,
	"SaveState": true, "RestoreState": true, "Checkpoint": true,
	"ForkReplica": true,
}

// orderSinkMethods are method names that emit bytes in call order;
// calling one from inside a map range makes iteration order observable.
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "WriteAll": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		sorted := sortedObjects(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, sorted)
			}
			return true
		})
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && forkFamily[fn.Name.Name] {
				checkForkPurity(pass, fn)
			}
		}
	}
	return nil
}

// checkForkPurity flags time sources inside fork-family functions.
// Replayed state must be a pure function of captured state; a
// wall-clock or global-rand read makes two restores of the same
// snapshot diverge.
func checkForkPurity(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.CalleePkgFunc(call)
		if !ok {
			return true
		}
		switch {
		case pkg == "time" && wallclockFuncs[name]:
			pass.Reportf(call.Pos(), "forkpurity",
				"time.%s inside fork-family function %s: snapshot/restore must not depend on when it runs", name, fn.Name.Name)
		case (pkg == "math/rand" || pkg == "math/rand/v2") && globalRandFuncs[name]:
			pass.Reportf(call.Pos(), "forkpurity",
				"rand.%s inside fork-family function %s: capture a seeded stream position instead of drawing from the global generator", name, fn.Name.Name)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := pass.CalleePkgFunc(call)
	if !ok {
		return
	}
	switch {
	case pkg == "time" && wallclockFuncs[name]:
		pass.Reportf(call.Pos(), "wallclock",
			"time.%s reads the wall clock; simulation must be a pure function of the seed (annotate //simlint:wallclock if this is genuine harness timing)", name)
	case (pkg == "math/rand" || pkg == "math/rand/v2") && globalRandFuncs[name]:
		pass.Reportf(call.Pos(), "rand",
			"rand.%s uses the global generator; thread a seeded *rand.Rand instead", name)
	}
}

// checkMapRange flags `for ... range m` over a map when the loop body
// lets iteration order escape: writing to an ordered sink (CSV, JSON,
// string builders), sending on a channel, or appending to a slice that
// the surrounding file never sorts. Order-insensitive bodies —
// aggregation, map-to-map copies, deletes — pass.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(rng.Pos(), "rangemap",
				"map iteration order escapes through a channel send; iterate sorted keys instead")
			return false
		case *ast.CallExpr:
			if pkg, name, ok := pass.CalleePkgFunc(n); ok && pkg == "fmt" &&
				(strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
				pass.Reportf(rng.Pos(), "rangemap",
					"map iteration order escapes through fmt.%s; iterate sorted keys instead", name)
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && orderSinkMethods[sel.Sel.Name] {
				pass.Reportf(rng.Pos(), "rangemap",
					"map iteration order escapes through %s; iterate sorted keys instead", sel.Sel.Name)
				return false
			}
		case *ast.AssignStmt:
			if obj, ok := appendTarget(pass, n); ok && !sorted[obj] {
				pass.Reportf(rng.Pos(), "rangemap",
					"map iteration order escapes into %q, which is never sorted; sort it (or the keys) before use", obj.Name())
				return false
			}
		}
		return true
	})
}

// appendTarget recognises `x = append(x, ...)` and returns the slice
// variable appended to. Appends into fields or index expressions are
// not tracked (conservatively allowed).
func appendTarget(pass *analysis.Pass, as *ast.AssignStmt) (types.Object, bool) {
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
			continue
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				return obj, true
			}
		}
	}
	return nil, false
}

// sortedObjects collects every variable the file passes to a sort/slices
// ordering function; appending to one of these inside a map range is
// the standard collect-then-sort idiom and stays legal.
func sortedObjects(pass *analysis.Pass, file *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.CalleePkgFunc(call)
		if !ok {
			return true
		}
		isSort := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}
