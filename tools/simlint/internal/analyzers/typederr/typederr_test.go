package typederr

import (
	"testing"

	"repro/tools/simlint/internal/analysistest"
)

func TestBadFixtureFires(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/typederr/bad")
}

func TestCleanFixtureSilent(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/typederr/clean")
}
