// Package typederr enforces that typed errors — *harness.WatchdogError,
// cpu.ErrWatchdog, the trial-failure taxonomy — are matched through
// errors.Is / errors.As, never by type assertion, type switch, sentinel
// identity (==), or Error()-string matching. The harness wraps every
// trial error with cell/attempt context, so anything but the errors
// helpers silently stops matching the moment a wrap is added.
package typederr

import (
	"go/ast"
	"go/token"

	"repro/tools/simlint/internal/analysis"
)

// Analyzer is the typed-error-matching check.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc: "match typed errors with errors.Is/errors.As, not type " +
		"assertions, type switches, == identity, or Error() strings",
	Run: run,
}

// stringMatchFuncs are strings-package helpers that, applied to
// err.Error(), amount to matching an error by message text.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true, "EqualFold": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				checkAssert(pass, n)
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, n)
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkStringMatch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssert flags err.(T) when err is the error interface. (Type
// switches reach here with Type==nil and are handled separately.)
func checkAssert(pass *analysis.Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return
	}
	if analysis.IsErrorType(pass.TypeOf(ta.X)) {
		pass.Reportf(ta.Pos(), "typederr",
			"type assertion on an error value misses wrapped errors; use errors.As")
	}
}

func checkTypeSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	}
	if x != nil && analysis.IsErrorType(pass.TypeOf(x)) {
		pass.Reportf(ts.Pos(), "typederr",
			"type switch on an error value misses wrapped errors; use errors.As")
	}
}

// checkComparison flags two patterns: sentinel identity (err == ErrX,
// where neither side is nil) and message matching
// (err.Error() == "...").
func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isErrorString(pass, be.X) || isErrorString(pass, be.Y) {
		pass.Reportf(be.Pos(), "typederr",
			"matching an error by its Error() string is fragile; use errors.Is against a sentinel")
		return
	}
	xNil := pass.TypesInfo.Types[be.X].IsNil()
	yNil := pass.TypesInfo.Types[be.Y].IsNil()
	if xNil || yNil {
		return // err == nil is the one legitimate identity check
	}
	if analysis.IsErrorType(pass.TypeOf(be.X)) && analysis.IsErrorType(pass.TypeOf(be.Y)) {
		pass.Reportf(be.Pos(), "typederr",
			"comparing errors with %s misses wrapped errors; use errors.Is", be.Op)
	}
}

// checkStringMatch flags strings.Contains(err.Error(), ...) and
// friends.
func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := pass.CalleePkgFunc(call)
	if !ok || pkg != "strings" || !stringMatchFuncs[name] {
		return
	}
	for _, arg := range call.Args {
		if isErrorString(pass, arg) {
			pass.Reportf(call.Pos(), "typederr",
				"strings.%s on err.Error() matches by message text; use errors.Is/errors.As", name)
			return
		}
	}
}

// isErrorString reports whether e is a call of the Error() method on a
// value that is (or implements) error — interface or concrete typed
// error alike.
func isErrorString(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := pass.TypeOf(sel.X)
	return analysis.IsErrorType(t) || analysis.ImplementsError(t)
}
