// Package exhaustive requires switches over the repository's enum-like
// constant sets — cpu.Kind*, undo cleanup/constant-time modes, cache
// coherence states, isa.Op*, the harness outcome taxonomy — to either
// cover every member or carry a deliberate default arm. A silently
// missing arm is how a new event kind or failure class slips past the
// covert-channel measurements unmeasured.
//
// An enum type is any defined (non-alias) named type with an integer or
// string underlying type for which the defining package declares at
// least two constants of exactly that type.
package exhaustive

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/tools/simlint/internal/analysis"
)

// Analyzer is the exhaustive-switch check.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "switches over enum-like constant sets must cover every member " +
		"or carry a deliberate default arm",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if ok && sw.Tag != nil {
				checkSwitch(pass, sw)
			}
			return true
		})
	}
	return nil
}

// member is one enum constant: its declared name and exact value.
type member struct {
	name  string
	value string
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypeOf(sw.Tag)
	members, typeName := enumMembers(tagType)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default arm: deliberate, accepted
		}
		for _, e := range cc.List {
			tv := pass.TypesInfo.Types[e]
			if tv.Value == nil {
				return // dynamic case expression: cannot reason, skip
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	seen := map[string]bool{}
	for _, m := range members {
		if !covered[m.value] && !seen[m.value] {
			missing = append(missing, m.name)
			seen[m.value] = true
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "exhaustive",
		"switch on %s is not exhaustive: missing %s (add the cases or a deliberate default arm)",
		typeName, strings.Join(missing, ", "))
}

// enumMembers returns the constants of t's defining package whose type
// is exactly t, when t qualifies as an enum type.
func enumMembers(t types.Type) ([]member, string) {
	if t == nil {
		return nil, ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 || basic.Kind() == types.Bool {
		return nil, ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil, ""
	}
	scope := obj.Pkg().Scope()
	var members []member
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		members = append(members, member{name: name, value: c.Val().ExactString()})
	}
	typeName := obj.Name()
	if obj.Pkg() != nil {
		typeName = fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
	}
	return members, typeName
}
