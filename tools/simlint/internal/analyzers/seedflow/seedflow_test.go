package seedflow

import (
	"testing"

	"repro/tools/simlint/internal/analysistest"
)

func TestBadFixtureFires(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/seedflow/bad")
}

func TestCleanFixtureSilent(t *testing.T) {
	analysistest.Run(t, analysistest.DefaultModule(), Analyzer, "fixtures/seedflow/clean")
}
