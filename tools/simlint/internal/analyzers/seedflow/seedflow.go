// Package seedflow catches double-seeding bugs: a function that already
// receives its randomness — a `seed int64` parameter or a *rand.Rand —
// must not construct a second generator from a literal seed. Such a
// generator is deaf to the trial seed, so the run replays differently
// from what the harness journal recorded, which breaks -resume and
// makes fuzz witnesses unreproducible.
package seedflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/simlint/internal/analysis"
)

// Analyzer is the double-seeding check.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "seeded functions (seed int64 / *rand.Rand parameters) must not " +
		"construct a second RNG from a literal seed",
	Run: run,
}

// rngConstructors are math/rand (v1 and v2) source constructors whose
// all-literal arguments indicate a hard-coded seed.
var rngConstructors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			if param := seededParam(pass, fn); param != "" {
				checkBody(pass, fn, param)
			}
			return true
		})
	}
	return nil
}

// seededParam returns the name of the parameter that makes fn a seeded
// function: an integer parameter whose name contains "seed", or a
// parameter of type *math/rand.Rand (v1 or v2).
func seededParam(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if isRandRand(obj.Type()) {
				return name.Name
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok &&
				b.Info()&types.IsInteger != 0 &&
				strings.Contains(strings.ToLower(name.Name), "seed") {
				return name.Name
			}
		}
	}
	return ""
}

func isRandRand(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	return (pkg == "math/rand" || pkg == "math/rand/v2") && named.Obj().Name() == "Rand"
}

// checkBody flags rand source constructors whose arguments are all
// compile-time constants — a literal seed that ignores the one the
// caller already threaded in.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl, param string) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.CalleePkgFunc(call)
		if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") || !rngConstructors[name] {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		for _, arg := range call.Args {
			if !pass.IsConstExpr(arg) {
				return true
			}
		}
		pass.Reportf(call.Pos(), "seedflow",
			"rand.%s with a literal seed inside a function already seeded via %q decouples replay from the journal; derive the source from %q",
			name, param, param)
		return true
	})
}
