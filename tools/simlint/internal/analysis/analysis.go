// Package analysis is a deliberately small, stdlib-only reimplementation
// of the golang.org/x/tools/go/analysis surface this repository needs.
//
// The sandbox this repo builds in has no module proxy, so x/tools cannot
// be a dependency; the Analyzer/Pass shapes below match the upstream
// framework closely enough that the simlint analyzers could be ported to
// real go/analysis Analyzers by swapping imports. Packages are loaded
// with full type information by internal/loader (via `go list -export`
// and the stdlib gc importer), so analyzers get the same types.Info an
// x/tools pass would.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:<name> suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant protected.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Category is the suppression key: a //simlint:<category> (or
	// //simlint:<analyzer>) comment on or immediately above the line
	// silences the diagnostic.
	Category string
	Message  string
}

// String renders the go-vet-style file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s/%s] %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Category, d.Message)
}

// Reportf records a diagnostic at pos under the given suppression
// category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Target is the loaded-package interface the runner consumes; it is
// satisfied by *loader.Package (kept as an interface so the analysis
// package has no import cycle with the loader).
type Target interface {
	PackagePath() string
	ASTFiles() []*ast.File
	FileSet() *token.FileSet
	TypesPackage() *types.Package
	Info() *types.Info
	// SuppressedAt reports whether a //simlint: directive for name is in
	// force on the given line of the given file.
	SuppressedAt(file string, line int, name string) bool
}

// Run applies every analyzer to every package and returns the surviving
// (non-suppressed) diagnostics sorted by position for deterministic
// output. Analyzer runtime errors are returned after all packages have
// been attempted.
func Run(targets []Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var errs []string
	for _, tgt := range targets {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      tgt.FileSet(),
				Files:     tgt.ASTFiles(),
				PkgPath:   tgt.PackagePath(),
				Pkg:       tgt.TypesPackage(),
				TypesInfo: tgt.Info(),
			}
			pass.report = func(d Diagnostic) {
				if tgt.SuppressedAt(d.Pos.Filename, d.Pos.Line, d.Category) ||
					tgt.SuppressedAt(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %s: %v", a.Name, tgt.PackagePath(), err))
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if len(errs) > 0 {
		return diags, fmt.Errorf("analyzer errors:\n  %s", strings.Join(errs, "\n  "))
	}
	return diags, nil
}
