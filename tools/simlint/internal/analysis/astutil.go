package analysis

import (
	"go/ast"
	"go/types"
)

// CalleePkgFunc resolves a call of the form pkg.Fn(...) to the imported
// package path and function name, following import renames through the
// type checker (so `import r "math/rand"; r.Intn(5)` still resolves to
// ("math/rand", "Intn")). It returns ok=false for method calls, locals,
// conversions and anything else that is not a package-level function
// selected off an import.
func (p *Pass) CalleePkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// ImplementsError reports whether t (or *t) implements the error
// interface, i.e. it is a concrete or interface error type.
func ImplementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// ReceiverObject returns the declared receiver variable of a method, or
// nil for functions and anonymous receivers.
func (p *Pass) ReceiverObject(fn *ast.FuncDecl) *types.Var {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fn.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	v, _ := p.TypesInfo.Defs[id].(*types.Var)
	return v
}

// UsesObject reports whether expr is an identifier resolving to obj.
func (p *Pass) UsesObject(expr ast.Expr, obj types.Object) bool {
	id, ok := expr.(*ast.Ident)
	if !ok || obj == nil {
		return false
	}
	return p.TypesInfo.Uses[id] == obj
}

// TypeOf returns the type of expr, or nil when untyped.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.TypesInfo.Types[expr].Type
}

// IsConstExpr reports whether expr has a compile-time constant value.
func (p *Pass) IsConstExpr(expr ast.Expr) bool {
	return p.TypesInfo.Types[expr].Value != nil
}
