// Package analysistest runs one analyzer over fixture packages and
// compares its diagnostics against `// want "regexp"` comments, the
// same convention as golang.org/x/tools/go/analysis/analysistest. A
// line may carry several want strings; every diagnostic on a line must
// match one want and every want must be matched by exactly one
// diagnostic. Fixture packages live in a self-contained module (see
// testdata/src/go.mod) so the loader can build real type information
// for them.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/tools/simlint/internal/analysis"
	"repro/tools/simlint/internal/loader"
)

var (
	loadMu    sync.Mutex
	loadCache = map[string][]*loader.Package{}
)

// DefaultModule locates the shared fixture module testdata/src relative
// to the simlint module root (found from this source file's location).
func DefaultModule() string {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		return filepath.Join("testdata", "src")
	}
	// .../tools/simlint/internal/analysistest/analysistest.go -> module root
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	return filepath.Join(root, "testdata", "src")
}

// Run loads the fixture module at moduleDir, selects the packages whose
// import paths match patterns (exact path or prefix/... wildcard), runs
// the analyzer, and reports mismatches against want comments on t.
func Run(t *testing.T, moduleDir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs := loadModule(t, moduleDir)
	selected := selectPackages(pkgs, patterns)
	if len(selected) == 0 {
		t.Fatalf("no fixture packages match %v", patterns)
	}
	targets := make([]analysis.Target, len(selected))
	for i, p := range selected {
		targets[i] = p
	}
	diags, err := analysis.Run(targets, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, a, selected, diags)
}

func loadModule(t *testing.T, moduleDir string) []*loader.Package {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()
	if pkgs, ok := loadCache[moduleDir]; ok {
		return pkgs
	}
	pkgs, err := loader.Load(moduleDir, "./...")
	if err != nil {
		t.Fatalf("loading fixtures in %s: %v", moduleDir, err)
	}
	loadCache[moduleDir] = pkgs
	return pkgs
}

func selectPackages(pkgs []*loader.Package, patterns []string) []*loader.Package {
	var out []*loader.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(p.PkgPath, pat) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func matchPattern(path, pattern string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern || strings.HasSuffix(path, "/"+pattern)
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`// want (("[^"]*"\s*)+)$`)

func checkWants(t *testing.T, a *analysis.Analyzer, pkgs []*loader.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, p := range pkgs {
		for _, f := range p.Syntax {
			wants = append(wants, collectWants(t, p.Fset, f)...)
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: [%s/%s] %s",
				posKey(d.Pos.Filename, d.Pos.Line), d.Analyzer, d.Category, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no %s diagnostic matched want %q", posKey(w.file, w.line), a.Name, w.raw)
		}
	}
}

// collectWants scans a file's comments for want expectations.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*want {
	t.Helper()
	var out []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range regexp.MustCompile(`"[^"]*"`).FindAllString(m[1], -1) {
				raw, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", posKey(pos.Filename, pos.Line), q, err)
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", posKey(pos.Filename, pos.Line), raw, err)
				}
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
			}
		}
	}
	return out
}

func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}
