// Package bad matches typed errors every way the typederr analyzer
// forbids.
package bad

import (
	"errors"
	"strings"
)

// WatchdogError mirrors the harness's typed error.
type WatchdogError struct {
	Cycles int
}

// Error implements error.
func (e *WatchdogError) Error() string { return "watchdog" }

// ErrBudget is a sentinel.
var ErrBudget = errors.New("budget exhausted")

// Assert matches by type assertion instead of errors.As.
func Assert(err error) int {
	if we, ok := err.(*WatchdogError); ok { // want "use errors.As"
		return we.Cycles
	}
	return 0
}

// Switch matches by type switch instead of errors.As.
func Switch(err error) string {
	switch err.(type) { // want "use errors.As"
	case *WatchdogError:
		return "watchdog"
	default:
		return "other"
	}
}

// Identity compares sentinels with == instead of errors.Is.
func Identity(err error) bool {
	return err == ErrBudget // want "use errors.Is"
}

// Message matches by Error() string equality.
func Message(err error) bool {
	return err.Error() == "budget exhausted" // want "errors.Is"
}

// Contains matches by Error() substring.
func Contains(err error) bool {
	return strings.Contains(err.Error(), "watchdog") // want "errors.Is/errors.As"
}
