// Package clean matches typed errors the sanctioned way; the typederr
// analyzer must stay silent.
package clean

import "errors"

// WatchdogError mirrors the harness's typed error.
type WatchdogError struct {
	Cycles int
}

// Error implements error.
func (e *WatchdogError) Error() string { return "watchdog" }

// ErrBudget is a sentinel.
var ErrBudget = errors.New("budget exhausted")

// As unwraps through the chain.
func As(err error) int {
	var we *WatchdogError
	if errors.As(err, &we) {
		return we.Cycles
	}
	return 0
}

// Is matches the sentinel through wraps.
func Is(err error) bool {
	return errors.Is(err, ErrBudget)
}

// NilCheck is the one legitimate identity comparison.
func NilCheck(err error) bool {
	return err == nil
}

// NonError type assertions are out of scope.
func NonError(v interface{}) (int, bool) {
	n, ok := v.(int)
	return n, ok
}
