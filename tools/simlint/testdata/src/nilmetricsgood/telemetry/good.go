// Package telemetry (fixture) keeps the nil-safe handle contract; the
// nilmetrics analyzer must stay silent.
package telemetry

// Gauge is a handle type whose nil value is a free no-op.
type Gauge struct {
	bits uint64
}

// Set guards before the field store.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	g.bits = v
}

// Value uses the inverted guard form.
func (g *Gauge) Value() uint64 {
	if g != nil {
		return g.bits
	}
	return 0
}

// Reset delegates to a guarded method; calling through the receiver
// without touching fields is fine.
func (g *Gauge) Reset() {
	g.Set(0)
}

// observe is unexported: helpers behind the guard are exempt.
func (g *Gauge) observe(v uint64) {
	g.bits += v
}

// String has a value receiver; it cannot be called on nil.
func (g Gauge) String() string {
	if g.bits == 0 {
		return "0"
	}
	return "nonzero"
}

// SkipCounter mirrors the fast-forward skip counters
// (cpu_skipped_cycles_total / cpu_fastforwards_total): one call folds
// in a whole idle-cycle jump, and a nil handle stays a free no-op.
type SkipCounter struct {
	skipped uint64
	jumps   uint64
}

// AddSkip records one fast-forward of n idle cycles.
func (c *SkipCounter) AddSkip(n uint64) {
	if c == nil {
		return
	}
	c.skipped += n
	c.jumps++
}
