// Package teletrace (fixture) keeps the nil-safe handle contract; the
// nilmetrics analyzer must stay silent.
package teletrace

// Span is a handle type whose nil value is a free no-op.
type Span struct {
	name   string
	events int
}

// SetAttr guards before the field store.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.name = k + "=" + v
}

// End uses the inverted guard form.
func (s *Span) End() {
	if s != nil {
		s.events = 0
	}
}

// Name delegates to a guarded helper through the receiver without
// touching fields; that is fine.
func (s *Span) Name() string {
	return s.label()
}

// label is unexported: helpers behind the guard are exempt.
func (s *Span) label() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Tracer hands out spans; a nil tracer starts nil spans for free.
type Tracer struct {
	service string
}

// StartRoot guards before dereferencing.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{name: t.service + "/" + name}
}
