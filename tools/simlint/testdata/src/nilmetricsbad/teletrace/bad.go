// Package teletrace (fixture) breaks the nil-safe handle contract:
// exported pointer-receiver methods on tracing handles touch fields
// before guarding the receiver, so an untraced run (nil *Tracer, nil
// *Span everywhere) would panic instead of no-opping.
package teletrace

// Span is a handle type whose nil value must be a free no-op.
type Span struct {
	name   string
	events int
}

// SetAttr forgets the nil guard entirely.
func (s *Span) SetAttr(k, v string) { // want "without a nil-receiver guard"
	s.name = k + "=" + v
}

// Eventf guards too late: the field access precedes the check.
func (s *Span) Eventf(name string) { // want "without a nil-receiver guard"
	s.events++
	if s == nil {
		return
	}
}

// End is correct and must not be flagged.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.events = 0
}

// Tracer hands out spans; a nil tracer means tracing is off.
type Tracer struct {
	service string
}

// StartRoot dereferences the receiver before any guard.
func (t *Tracer) StartRoot(name string) *Span { // want "without a nil-receiver guard"
	return &Span{name: t.service + "/" + name}
}
