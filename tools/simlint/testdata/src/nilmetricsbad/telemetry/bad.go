// Package telemetry (fixture) breaks the nil-safe handle contract:
// exported pointer-receiver methods touch fields before guarding the
// receiver, so a detached handle would panic instead of no-opping.
package telemetry

// Counter is a handle type whose nil value must be a free no-op.
type Counter struct {
	v uint64
}

// Inc forgets the nil guard entirely.
func (c *Counter) Inc() { // want "without a nil-receiver guard"
	c.v++
}

// Add guards too late: the field access precedes the check.
func (c *Counter) Add(n uint64) { // want "without a nil-receiver guard"
	c.v += n
	if c == nil {
		return
	}
}

// Value is correct and must not be flagged.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// SkipCounter mirrors the fast-forward skip counters but records the
// jump before guarding — a detached core would panic on its first skip.
type SkipCounter struct {
	skipped uint64
	jumps   uint64
}

// AddSkip touches fields before the guard.
func (c *SkipCounter) AddSkip(n uint64) { // want "without a nil-receiver guard"
	c.skipped += n
	if c == nil {
		return
	}
	c.jumps++
}
