package bad

import (
	"math/rand"
	"time"
)

// machine is a toy snapshot target for the forkpurity fixtures.
type machine struct {
	cycle uint64
	seed  int64
}

// Snapshot stamps wall-clock time into captured state — two snapshots
// of the same machine would differ. Fires both wallclock and
// forkpurity; the latter cannot be waived with //simlint:wallclock.
func (m *machine) Snapshot() machine {
	return machine{cycle: uint64(time.Now().UnixNano()), seed: m.seed} // want "reads the wall clock" "fork-family function Snapshot"
}

// Restore perturbs replayed state with the global generator — two
// restores of the same snapshot would diverge.
func (m *machine) Restore(s machine) {
	m.cycle = s.cycle + uint64(rand.Intn(3)) // want "global generator" "fork-family function Restore"
}

// SaveState shows the waiver gap: the wallclock category is
// suppressed, but forkpurity still fires.
func (m *machine) SaveState() any {
	return time.Now() //simlint:wallclock pretend this is fine // want "fork-family function SaveState"
}

// ForkReplica seeds a worker replica from the global generator — two
// workers would fork different machines and batch results would
// depend on scheduling.
func (m *machine) ForkReplica() *machine {
	return &machine{seed: rand.Int63()} // want "global generator" "fork-family function ForkReplica"
}
