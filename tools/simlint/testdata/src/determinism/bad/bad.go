// Package bad is a deliberately nondeterministic fixture: every
// construct here must trip the determinism analyzer.
package bad

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"
)

// Stamp reads the wall clock mid-simulation.
func Stamp() int64 {
	return time.Now().UnixNano() // want "reads the wall clock"
}

// Elapsed also reads the wall clock, via Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "reads the wall clock"
}

// Jitter uses the global generator, decoupling the run from its seed.
func Jitter() int {
	return rand.Intn(8) // want "global generator"
}

// Reseed mutates the global generator.
func Reseed() {
	rand.Seed(42) // want "global generator"
}

// EmitCSV lets map iteration order reach the output stream.
func EmitCSV(cells map[string]float64) {
	for k, v := range cells { // want "escapes through fmt.Fprintf"
		fmt.Fprintf(os.Stdout, "%s,%g\n", k, v)
	}
}

// Collect appends map keys to a slice that is never sorted.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // want "escapes into .out."
		out = append(out, k)
	}
	return out
}

// Build writes map entries into a string builder in iteration order.
func Build(m map[int]string) string {
	var sb strings.Builder
	for _, v := range m { // want "escapes through WriteString"
		sb.WriteString(v)
	}
	return sb.String()
}

// Stream sends map values down a channel in iteration order.
func Stream(m map[int]int, ch chan<- int) {
	for _, v := range m { // want "escapes through a channel send"
		ch <- v
	}
}
