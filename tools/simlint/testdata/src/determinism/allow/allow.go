// Package allow proves the //simlint:wallclock allowlist: these are
// "genuine" wall-clock uses (harness-style deadlines), annotated, so
// the analyzer must stay silent.
package allow

import "time"

// Deadline is harness-style wall-clock timing, deliberately allowed.
func Deadline() time.Time {
	return time.Now().Add(time.Second) //simlint:wallclock trial deadline is real time
}

// Elapsed shows the standalone-comment form covering the next line.
func Elapsed(t0 time.Time) time.Duration {
	//simlint:wallclock progress reporting is real time
	return time.Since(t0)
}
