package clean

// machine is a toy snapshot target: the fork family here is pure, so
// the forkpurity category must stay silent.
type machine struct {
	cycle uint64
	draws uint64
}

// Snapshot captures only machine state.
func (m *machine) Snapshot() machine { return *m }

// Restore replays only captured state.
func (m *machine) Restore(s machine) { *m = s }

// SaveState captures a seeded stream position instead of drawing new
// randomness — the pattern forkpurity is steering code toward.
func (m *machine) SaveState() any { return m.draws }

// RestoreState rewinds to the saved position.
func (m *machine) RestoreState(v any) { m.draws = v.(uint64) }

// Fork shares state copy-on-write; nothing here may consult a clock.
func (m *machine) Fork() *machine {
	out := *m
	return &out
}

// ForkReplica builds a worker's replica purely from captured state —
// every worker forks the identical machine, so batch results are a
// pure function of the trial index.
func (m *machine) ForkReplica() *machine {
	out := *m
	out.draws = 0
	return &out
}
