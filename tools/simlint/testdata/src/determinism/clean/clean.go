// Package clean exercises the legal counterparts of everything the
// determinism analyzer forbids; it must produce zero diagnostics.
package clean

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
)

// Jitter threads a seeded generator instead of the global one.
func Jitter(rng *rand.Rand) int {
	return rng.Intn(8)
}

// NewRNG builds the generator from the caller's seed.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// EmitCSV iterates sorted keys, so output order is a pure function of
// the data.
func EmitCSV(cells map[string]float64) {
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(os.Stdout, "%s,%g\n", k, cells[k])
	}
}

// Total aggregates over a map; order cannot escape a commutative sum.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Invert copies a map into a map; no order-sensitive sink involved.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
