// Package bad holds switches that silently miss enum members; every
// switch here must trip the exhaustive analyzer.
package bad

// Kind mirrors the cpu.Kind event taxonomy: a defined string type with
// a package-level constant set.
type Kind string

// The event kinds.
const (
	KindFetch  Kind = "fetch"
	KindIssue  Kind = "issue"
	KindRetire Kind = "retire"
	KindSquash Kind = "squash"
)

// Class mirrors the harness outcome taxonomy as an int enum.
type Class int

// The outcome classes.
const (
	ClassOK Class = iota
	ClassPanic
	ClassTimeout
)

// Describe misses KindSquash and has no default arm.
func Describe(k Kind) string {
	switch k { // want "missing KindSquash"
	case KindFetch:
		return "fetch"
	case KindIssue:
		return "issue"
	case KindRetire:
		return "retire"
	}
	return ""
}

// Retryable misses two members of the int enum.
func Retryable(c Class) bool {
	switch c { // want "missing ClassPanic, ClassTimeout"
	case ClassOK:
		return false
	}
	return true
}

// Verdict mirrors the absint leak-analysis tri-state.
type Verdict uint8

// The verdicts.
const (
	NoLeak Verdict = iota
	Leaks
	Unknown
)

// Sound misses Unknown — exactly the arm whose omission would let a
// budget-truncated analysis read as a clean NoLeak.
func Sound(v Verdict) bool {
	switch v { // want "missing Unknown"
	case NoLeak:
		return true
	case Leaks:
		return false
	}
	return false
}

// Status mirrors the engine's batched-trial outcome enum.
type Status uint8

// The trial outcomes.
const (
	StatusOK Status = iota
	StatusWatchdog
	StatusError
)

// Usable misses StatusWatchdog — exactly the arm whose omission would
// fold a garbage timed-out latency into batch statistics.
func Usable(s Status) bool {
	switch s { // want "missing StatusWatchdog"
	case StatusOK:
		return true
	case StatusError:
		return false
	}
	return false
}
