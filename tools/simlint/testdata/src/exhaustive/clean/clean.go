// Package clean holds switches the exhaustive analyzer must accept:
// full coverage, deliberate defaults, and non-enum tags.
package clean

// State is a small coherence-style enum.
type State int

// The states.
const (
	Invalid State = iota
	Shared
	Modified
)

// Name covers every member: exhaustive without a default.
func Name(s State) string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return "?"
}

// Deliberate carries a default arm instead of full coverage.
func Deliberate(s State) bool {
	switch s {
	case Modified:
		return true
	default:
		return false
	}
}

// Taint mirrors the absint taint lattice.
type Taint uint8

// The taint levels, ordered by the lattice chain.
const (
	Untainted Taint = iota
	SpecSecret
	Secret
)

// Label covers the whole lattice: exhaustive without a default.
func Label(t Taint) string {
	switch t {
	case Untainted:
		return "untainted"
	case SpecSecret:
		return "spec-secret"
	case Secret:
		return "secret"
	}
	return "?"
}

// NotEnum switches over a plain int; no constant set, no requirement.
func NotEnum(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}

// Dynamic has a non-constant case, so the analyzer cannot (and must
// not) reason about coverage.
func Dynamic(s, other State) bool {
	switch s {
	case other:
		return true
	}
	return false
}

// TrialStatus mirrors the engine's batched-trial outcome enum.
type TrialStatus uint8

// The trial outcomes.
const (
	TrialOK TrialStatus = iota
	TrialWatchdog
	TrialError
)

// Render covers every trial outcome plus a default fallback for
// out-of-range values — the engine's String shape.
func Render(s TrialStatus) string {
	switch s {
	case TrialOK:
		return "ok"
	case TrialWatchdog:
		return "watchdog"
	case TrialError:
		return "error"
	default:
		return "?"
	}
}
