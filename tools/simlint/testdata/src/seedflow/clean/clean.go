// Package clean threads seeds correctly; the seedflow analyzer must
// stay silent.
package clean

import "math/rand"

// Run derives its generator from the trial seed.
func Run(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Fork derives a sub-generator from the parent stream.
func Fork(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63()))
}

// Fixture has no seed parameter: a fixed generator in test scaffolding
// or a default is out of seedflow's scope (determinism's rand check
// still governs the global source).
func Fixture() int {
	rng := rand.New(rand.NewSource(99))
	return rng.Intn(10)
}
