// Package bad double-seeds: functions that already receive their
// randomness construct second generators from literal seeds.
package bad

import "math/rand"

// Run takes the trial seed but hard-codes another one, so replay from
// the journal diverges.
func Run(seed int64) int {
	rng := rand.New(rand.NewSource(42)) // want "literal seed"
	return rng.Intn(10)
}

// Perturb receives a seeded generator and builds a rival anyway.
func Perturb(rng *rand.Rand) int {
	other := rand.New(rand.NewSource(7)) // want "literal seed"
	return rng.Intn(10) + other.Intn(10)
}

// Derive hides the literal behind arithmetic; still a compile-time
// constant, still deaf to the trial seed.
func Derive(seed int64) int64 {
	src := rand.NewSource(1000 + 24) // want "literal seed"
	return src.Int63()
}
