// Command simlint is the repository's domain-invariant static analysis
// suite: a multichecker of five analyzers protecting invariants the Go
// compiler cannot see (bit-determinism per seed, exhaustive handling of
// the event/outcome taxonomies, nil-safe telemetry handles, errors.Is/As
// discipline, and seed plumbing). See docs/LINTING.md.
//
// Usage:
//
//	simlint [-C dir] [-checks a,b] [-json] [-list] [packages]
//
// Exit status: 0 clean, 1 diagnostics found, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tools/simlint/internal/analysis"
	"repro/tools/simlint/internal/analyzers"
	"repro/tools/simlint/internal/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	dir := fs.String("C", ".", "directory to load packages from (a module root)")
	checks := fs.String("checks", "", "comma-separated analyzer subset (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	pkgs, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	targets := make([]analysis.Target, len(pkgs))
	for i, p := range pkgs {
		targets[i] = p
	}
	diags, err := analysis.Run(targets, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
