// Command benchjson turns `go test -bench` output into a stable JSON
// snapshot and compares two snapshots for throughput regressions. It is
// the engine behind scripts/bench_snapshot.sh (which commits the
// BENCH_*.json baselines) and scripts/bench_diff (which fails CI-style
// when simulator throughput drops by more than the tolerance).
//
// Snapshot mode (default):
//
//	go test -bench . -benchmem . | go run ./tools/benchjson -benchtime 1s > BENCH_5.json
//
// Every benchmark line becomes an entry with ns/op, B/op, allocs/op and
// all custom metrics (sim-cycles/op, samples/s, diff-cycles, ...). For
// benches reporting sim-cycles/op the derived sim-cycles/s throughput is
// recorded too — that is the number the paper's "as fast as the hardware
// allows" goal is judged by, and the one the diff mode gates.
//
// With -prior OLD.json the previous snapshot is embedded under
// "pre_change" along with per-bench wall-clock speedups, so a committed
// baseline carries its own before/after record.
//
// Diff mode:
//
//	go run ./tools/benchjson -diff OLD.json NEW.json
//
// compares throughput metrics (sim-cycles/s, samples/s, and raw ops/s
// for benches named by -gate) and exits 1 if any regressed by more than
// -tolerance (default 0.10). Wall-clock-only metrics such as diff-cycles
// or accuracy are informational: they are captured in the snapshot but
// never gated, because they measure the channel, not the simulator.
//
// Ratio mode:
//
//	go run ./tools/benchjson -ratio BenchmarkEngineBatch:BenchmarkSimulatorRawSpeed -min 10 NEW.json
//
// divides the derived sim-cycles/s of two benchmarks and exits 1 when
// the quotient is below -min. Because sim-cycles/s normalizes each
// bench by its own ns/op, the two benches may define "op" however they
// like (one attack round vs a 64-trial batch) and the ratio still
// compares aggregate simulated cycles per wall-clock second — this is
// how the batched engine's ≥10x speedup gate is computed from
// committed JSON instead of re-parsed bench output. With a second file
// the denominator bench is read from it (gate new engine throughput
// against an older baseline snapshot).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	// SimCyclesPerS is derived from the sim-cycles/op metric and ns/op:
	// simulated cycles per wall-clock second, the headline throughput.
	SimCyclesPerS float64 `json:"sim_cycles_per_s,omitempty"`
}

// Snapshot is the top-level BENCH_*.json document.
type Snapshot struct {
	Schema     int               `json:"schema"`
	Benchtime  string            `json:"benchtime,omitempty"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]*Bench `json:"benchmarks"`

	// PreChange holds the snapshot this one was measured against (via
	// -prior), preserving the before/after record inside the baseline.
	PreChange map[string]*Bench `json:"pre_change,omitempty"`
	// Speedup is new-vs-pre-change wall-clock ratio per benchmark
	// (old ns/op divided by new ns/op; >1 means faster).
	Speedup map[string]float64 `json:"speedup_vs_pre_change,omitempty"`
}

func main() {
	var (
		diff      = flag.Bool("diff", false, "compare two snapshots: benchjson -diff OLD.json NEW.json")
		tolerance = flag.Float64("tolerance", 0.10, "max fractional throughput regression allowed by -diff")
		gate      = flag.String("gate", "BenchmarkSimulatorRawSpeed", "comma-separated benches whose raw ops/s is also gated by -diff")
		benchtime = flag.String("benchtime", "", "benchtime the run used; recorded in the snapshot")
		prior     = flag.String("prior", "", "previous snapshot to embed as pre_change")
		ratio     = flag.String("ratio", "", "compare two benches' sim-cycles/s: benchjson -ratio NUM:DEN [-min F] NEW.json [DEN.json]")
		minRatio  = flag.Float64("min", 0, "minimum NUM/DEN sim-cycles/s quotient required by -ratio (0 = report only)")
	)
	flag.Parse()

	if *ratio != "" {
		if flag.NArg() < 1 || flag.NArg() > 2 {
			fatalf("usage: benchjson -ratio NUM:DEN [-min F] NEW.json [DEN.json]")
		}
		numName, denName, ok := strings.Cut(*ratio, ":")
		if !ok || numName == "" || denName == "" {
			fatalf("-ratio wants NUM:DEN, got %q", *ratio)
		}
		numSnap, err := load(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		denSnap := numSnap
		if flag.NArg() == 2 {
			if denSnap, err = load(flag.Arg(1)); err != nil {
				fatalf("%v", err)
			}
		}
		if !ratioGate(numSnap, denSnap, numName, denName, *minRatio, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			fatalf("usage: benchjson -diff OLD.json NEW.json")
		}
		old, err := load(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		cur, err := load(flag.Arg(1))
		if err != nil {
			fatalf("%v", err)
		}
		gated := map[string]bool{}
		for _, g := range strings.Split(*gate, ",") {
			if g = strings.TrimSpace(g); g != "" {
				gated[g] = true
			}
		}
		if !compare(old, cur, *tolerance, gated, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatalf("usage: benchjson [-benchtime D] [-prior OLD.json] [raw-bench-output-file]")
	}

	snap, err := parse(in)
	if err != nil {
		fatalf("%v", err)
	}
	snap.Benchtime = *benchtime
	if *prior != "" {
		old, err := load(*prior)
		if err != nil {
			fatalf("-prior: %v", err)
		}
		snap.PreChange = old.Benchmarks
		snap.Speedup = map[string]float64{}
		for name, b := range snap.Benchmarks {
			if o, ok := old.Benchmarks[name]; ok && b.NsPerOp > 0 {
				snap.Speedup[name] = o.NsPerOp / b.NsPerOp
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks section", path)
	}
	return &s, nil
}

// parse reads raw `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName-8   24   8671878 ns/op   8149 sim-cycles/op   1561508 B/op   4466 allocs/op
//
// i.e. an iteration count followed by value/unit pairs; anything that is
// not ns/op, B/op or allocs/op is a custom metric.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Schema: 1, Benchmarks: map[string]*Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the -GOMAXPROCS suffix so snapshots from machines
			// with different core counts stay comparable.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := &Bench{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q on line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		if c, ok := b.Metrics["sim-cycles/op"]; ok && b.NsPerOp > 0 {
			b.SimCyclesPerS = c / b.NsPerOp * 1e9
		}
		snap.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return snap, nil
}

// simCyclesPerS resolves a bench's derived sim-cycles/s throughput,
// re-deriving it from the metrics when the snapshot predates the
// derived field.
func simCyclesPerS(s *Snapshot, name string) (float64, error) {
	b, ok := s.Benchmarks[name]
	if !ok {
		return 0, fmt.Errorf("benchmark %s not in snapshot", name)
	}
	if b.SimCyclesPerS > 0 {
		return b.SimCyclesPerS, nil
	}
	if c, ok := b.Metrics["sim-cycles/op"]; ok && b.NsPerOp > 0 {
		return c / b.NsPerOp * 1e9, nil
	}
	return 0, fmt.Errorf("benchmark %s has no sim-cycles/op metric", name)
}

// ratioGate prints the NUM/DEN aggregate-throughput quotient and
// reports whether it clears min. The per-op normalization inside
// sim-cycles/s is what makes benches with different op granularities
// (single round vs whole batch) comparable.
func ratioGate(numSnap, denSnap *Snapshot, numName, denName string, min float64, w io.Writer) bool {
	nv, err := simCyclesPerS(numSnap, numName)
	if err != nil {
		fatalf("-ratio numerator: %v", err)
	}
	dv, err := simCyclesPerS(denSnap, denName)
	if err != nil {
		fatalf("-ratio denominator: %v", err)
	}
	q := nv / dv
	verdict := "ok  "
	ok := true
	if min > 0 && q < min {
		verdict = "FAIL"
		ok = false
	}
	fmt.Fprintf(w, "%s %s / %s sim-cycles/s: %.4g / %.4g = %.2fx", verdict, numName, denName, nv, dv, q)
	if min > 0 {
		fmt.Fprintf(w, " (min %.2fx)", min)
	}
	fmt.Fprintln(w)
	return ok
}

// throughputs returns the gated higher-is-better metrics of one bench.
func throughputs(name string, b *Bench, gated map[string]bool) map[string]float64 {
	t := map[string]float64{}
	if b.SimCyclesPerS > 0 {
		t["sim-cycles/s"] = b.SimCyclesPerS
	}
	if v, ok := b.Metrics["samples/s"]; ok {
		t["samples/s"] = v
	}
	if gated[name] && b.NsPerOp > 0 {
		t["ops/s"] = 1e9 / b.NsPerOp
	}
	return t
}

// compare reports throughput deltas of cur against old and returns false
// if any gated metric regressed beyond the tolerance, or if a bench that
// carried gated metrics disappeared (silent loss of coverage).
func compare(old, cur *Snapshot, tolerance float64, gated map[string]bool, w io.Writer) bool {
	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	ok := true
	for _, name := range names {
		oldT := throughputs(name, old.Benchmarks[name], gated)
		if len(oldT) == 0 {
			continue
		}
		nb, present := cur.Benchmarks[name]
		if !present {
			fmt.Fprintf(w, "FAIL %s: missing from new snapshot\n", name)
			ok = false
			continue
		}
		newT := throughputs(name, nb, gated)
		metrics := make([]string, 0, len(oldT))
		for m := range oldT {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov := oldT[m]
			nv, has := newT[m]
			if !has {
				fmt.Fprintf(w, "FAIL %s %s: metric missing from new snapshot\n", name, m)
				ok = false
				continue
			}
			delta := (nv - ov) / ov
			verdict := "ok  "
			if delta < -tolerance {
				verdict = "FAIL"
				ok = false
			}
			fmt.Fprintf(w, "%s %s %s: %.4g -> %.4g (%+.1f%%)\n", verdict, name, m, ov, nv, 100*delta)
		}
	}
	if ok {
		fmt.Fprintf(w, "bench_diff: no sim-throughput regression beyond %.0f%%\n", 100*tolerance)
	} else {
		fmt.Fprintf(w, "bench_diff: sim-throughput regressed beyond %.0f%% tolerance\n", 100*tolerance)
	}
	return ok
}
