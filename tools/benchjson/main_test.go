package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableIConfig-8         	      24	   8671878 ns/op	      8149 sim-cycles/op	 1561508 B/op	    4466 allocs/op
BenchmarkLeakageRate-8          	     236	    941309 ns/op	    140093 samples/s	 1543046 B/op	    4497 allocs/op
BenchmarkSimulatorRawSpeed-8    	   39249	      6175 ns/op	       0 B/op	       0 allocs/op
BenchmarkFigure3TimingDifference-8	   18399	     12573 ns/op	        22.00 diff-cycles	       0 B/op	       0 allocs/op
PASS
ok  	repro	7.681s
`

func parseSample(t *testing.T, s string) *Snapshot {
	t.Helper()
	snap, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestParse(t *testing.T) {
	snap := parseSample(t, sample)
	if snap.Goos != "linux" || snap.Pkg != "repro" {
		t.Errorf("header parsed wrong: goos=%q pkg=%q", snap.Goos, snap.Pkg)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	b := snap.Benchmarks["BenchmarkTableIConfig"]
	if b == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if b.NsPerOp != 8671878 || b.AllocsPerOp != 4466 {
		t.Errorf("ns/op=%v allocs/op=%v", b.NsPerOp, b.AllocsPerOp)
	}
	if b.Metrics["sim-cycles/op"] != 8149 {
		t.Errorf("sim-cycles/op = %v", b.Metrics["sim-cycles/op"])
	}
	want := 8149.0 / 8671878 * 1e9
	if diff := b.SimCyclesPerS - want; diff > 1 || diff < -1 {
		t.Errorf("sim_cycles_per_s = %v, want %v", b.SimCyclesPerS, want)
	}
	if snap.Benchmarks["BenchmarkSimulatorRawSpeed"].SimCyclesPerS != 0 {
		t.Error("derived throughput invented for a bench without sim-cycles/op")
	}
}

// engineSample has two benches with different op granularities: the
// batch op covers 64 trials of 8 rounds, the raw-speed op one round.
// The derived sim-cycles/s makes them directly comparable.
const engineSample = `goos: linux
BenchmarkSimulatorRawSpeed-8    	  100000	      6700 ns/op	       168.0 sim-cycles/op	       0 B/op	       0 allocs/op
BenchmarkEngineBatch-8          	    2000	    672000 ns/op	     86016 sim-cycles/op	        64.00 trials/op	       0 B/op	       0 allocs/op
PASS
`

func TestRatioGate(t *testing.T) {
	snap := parseSample(t, engineSample)
	// 86016/672000 vs 168/6700: exactly 5.105x.
	var out strings.Builder
	if !ratioGate(snap, snap, "BenchmarkEngineBatch", "BenchmarkSimulatorRawSpeed", 5.0, &out) {
		t.Errorf("5.1x ratio failed a 5x gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "5.10x") {
		t.Errorf("ratio not reported: %s", out.String())
	}
	out.Reset()
	if ratioGate(snap, snap, "BenchmarkEngineBatch", "BenchmarkSimulatorRawSpeed", 10, &out) {
		t.Errorf("5.1x ratio passed a 10x gate:\n%s", out.String())
	}
	// min=0 reports without gating.
	out.Reset()
	if !ratioGate(snap, snap, "BenchmarkSimulatorRawSpeed", "BenchmarkEngineBatch", 0, &out) {
		t.Errorf("report-only ratio failed:\n%s", out.String())
	}
	// Denominator resolved from a different (older) snapshot that has no
	// derived field — it must be re-derived from raw metrics.
	oldSnap := parseSample(t, engineSample)
	oldSnap.Benchmarks["BenchmarkSimulatorRawSpeed"].SimCyclesPerS = 0
	out.Reset()
	if !ratioGate(snap, oldSnap, "BenchmarkEngineBatch", "BenchmarkSimulatorRawSpeed", 5.0, &out) {
		t.Errorf("cross-snapshot ratio with re-derived denominator failed:\n%s", out.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	gated := map[string]bool{"BenchmarkSimulatorRawSpeed": true}
	old := parseSample(t, sample)

	// 3x slower TableIConfig: sim-cycles/s collapses, must fail.
	slow := strings.Replace(sample, "8671878 ns/op", "26015634 ns/op", 1)
	var out strings.Builder
	if compare(old, parseSample(t, slow), 0.10, gated, &out) {
		t.Errorf("3x slowdown not flagged:\n%s", out.String())
	}

	// Within tolerance: 5% slower everywhere passes at 10%.
	okRun := sample
	for _, r := range [][2]string{
		{"8671878 ns/op", "9105471 ns/op"},
		{"140093 samples/s", "133088 samples/s"},
		{"6175 ns/op", "6483 ns/op"},
	} {
		okRun = strings.Replace(okRun, r[0], r[1], 1)
	}
	out.Reset()
	if !compare(old, parseSample(t, okRun), 0.10, gated, &out) {
		t.Errorf("5%% noise flagged as regression:\n%s", out.String())
	}

	// samples/s is gated even though ns/op there barely moved.
	bad := strings.Replace(sample, "140093 samples/s", "98065 samples/s", 1)
	out.Reset()
	if compare(old, parseSample(t, bad), 0.10, gated, &out) {
		t.Errorf("samples/s collapse not flagged:\n%s", out.String())
	}

	// A gated bench vanishing is a failure, not a silent pass.
	gone := strings.Replace(sample,
		"BenchmarkSimulatorRawSpeed-8    	   39249	      6175 ns/op	       0 B/op	       0 allocs/op\n", "", 1)
	out.Reset()
	if compare(old, parseSample(t, gone), 0.10, gated, &out) {
		t.Errorf("missing gated bench not flagged:\n%s", out.String())
	}

	// Ungated wall-clock-only benches never gate: diff-cycles bench 10x
	// slower is informational.
	slowDiff := strings.Replace(sample, "12573 ns/op", "125730 ns/op", 1)
	out.Reset()
	if !compare(old, parseSample(t, slowDiff), 0.10, gated, &out) {
		t.Errorf("ungated bench slowdown gated:\n%s", out.String())
	}
}
