# Convenience targets; everything is plain `go` underneath.

.PHONY: all test bench figures report attack examples clean

all: test

test:
	go build ./... && go vet ./... && go test ./...

test-output:
	go test -count=1 ./... 2>&1 | tee test_output.txt

bench:
	go test -bench=. -benchmem -count=1 ./... 2>&1 | tee bench_output.txt

figures:
	go run ./cmd/figures -out results

report:
	go run ./cmd/report -quick

attack:
	go run ./cmd/unxpec -bits 1000 -evict

examples:
	go run ./examples/quickstart
	go run ./examples/spectre
	go run ./examples/covertchannel
	go run ./examples/evictionset
	go run ./examples/mitigation -scale 2500
	go run ./examples/crosscore
	go run ./examples/interference

clean:
	rm -rf results/*.csv test_output.txt bench_output.txt
