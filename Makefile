# Convenience targets; everything is plain `go` underneath.

.PHONY: all test lint lint-smoke bench bench-snapshot bench-check figures report attack examples fuzz fuzz-selftest absint-smoke engine-smoke harness-smoke snapshot-smoke telemetry-smoke campaignd-smoke trace-smoke no-test-binaries regen-results clean

all: test

test:
	go build ./... && go vet ./... && go test ./...

# Static analysis gate (see docs/LINTING.md): go vet plus the simlint
# suite of domain-invariant analyzers (determinism, exhaustive enum
# switches, nil-safe telemetry handles, typed errors, seed discipline).
# simlint lives in its own module so the root module stays
# dependency-free.
lint:
	go vet ./...
	cd tools/simlint && go vet ./... && go test ./...
	cd tools/simlint && go run . -C ../..

# Prove each analyzer still fires on known-bad fixture code — a guard
# against an analyzer being silently disabled.
lint-smoke:
	./scripts/lint_smoke.sh

test-output:
	go test -count=1 ./... 2>&1 | tee test_output.txt

bench:
	go test -bench=. -benchmem -count=1 ./... 2>&1 | tee bench_output.txt

# Benchmark-regression harness (docs/PERFORMANCE.md): snapshot the full
# suite at a fixed -benchtime into a BENCH_*.json, and compare a fresh
# snapshot against the committed baseline — failing on >10% regression
# of sim-throughput metrics (sim-cycles/s, samples/s, raw-speed ops/s).
bench-snapshot:
	./scripts/bench_snapshot.sh

bench-check:
	./scripts/bench_snapshot.sh /tmp/bench-check.json
	./scripts/bench_diff BENCH_10.json /tmp/bench-check.json

figures:
	go run ./cmd/figures -out results

report:
	go run ./cmd/report -quick

attack:
	go run ./cmd/unxpec -bits 1000 -evict

examples:
	go run ./examples/quickstart
	go run ./examples/spectre
	go run ./examples/covertchannel
	go run ./examples/evictionset
	go run ./examples/mitigation -scale 2500
	go run ./examples/crosscore
	go run ./examples/interference

# Differential fuzzing sweep (see docs/FUZZING.md). Failing witnesses
# land in testdata/corpus/ where the test suite replays them forever.
fuzz:
	go run ./cmd/fuzz -n 500 -seed 1

# Prove the fuzzer's properties have teeth: with a deliberately broken
# rollback the sweep MUST fail, so this target succeeds when cmd/fuzz
# exits non-zero (witnesses go to a scratch dir, not the corpus).
fuzz-selftest:
	! go run ./cmd/fuzz -n 30 -seed 0 -scheme cleanupspec -inject skip-rollback -corpus /tmp/fuzz-selftest-corpus

# Static/dynamic leak-analysis cross-check (see docs/ABSINT.md): the
# abstract speculative-taint interpreter over the full corpus and the
# spectre gadget suite, plus a 500-program fuzz sweep where absint may
# never certify NoLeak against a firing dynamic detector.
absint-smoke:
	./scripts/absint_smoke.sh

# Batched parallel trial engine check (docs/ENGINE.md): determinism
# suite and harness under -race, CSV/stdout bit-identity of figures and
# fuzz sweeps across -jobs widths, and the sim-cycles/s throughput gate
# computed from benchjson JSON (min(10, 0.5 * cores) over the
# sequential raw-speed bench).
engine-smoke:
	./scripts/engine_smoke.sh

# End-to-end resilience check (see docs/HARNESS.md): injected faults
# become classified journaled gaps, an interrupted campaign exits 6,
# and -resume completes it with a byte-identical CSV.
harness-smoke:
	./scripts/harness_smoke.sh

# Snapshot-equivalence check under the race detector (docs/SNAPSHOTS.md):
# fork-then-run must be bit-identical to fresh-run, COW pages must never
# bleed between siblings, and a warm fork must allocate only dirty pages.
snapshot-smoke:
	./scripts/snapshot_smoke.sh

# End-to-end observability check (see docs/OBSERVABILITY.md): live
# debug endpoint while a sweep runs, campaign metrics rollup, injected
# panic with a flight-recorder post-mortem, and Chrome trace export —
# all validated by scripts/telemetrycheck.
telemetry-smoke:
	./scripts/telemetry_smoke.sh

# Distributed campaign chaos check (see docs/CAMPAIGND.md): a 3-worker
# figure sweep under -race with a chaos-killed worker, RPC drop/dup
# faults, and a kill -9'd + restarted coordinator — the final CSV must
# be byte-identical to a single-process run, the journal exactly-once,
# and a cache-warm resubmission must re-simulate nothing.
campaignd-smoke:
	./scripts/campaignd_smoke.sh

# End-to-end distributed-tracing check (docs/OBSERVABILITY.md,
# "Tracing"): an offline exemplar -> span-tree walk from figures disk
# artefacts, then a 2-worker campaign whose trace IDs must appear in
# the journal, the cells.csv metadata and the Perfetto export.
trace-smoke:
	./scripts/trace_smoke.sh

# Hygiene gate: no compiled Go test binaries (or any native
# executable) committed to the tree.
no-test-binaries:
	./scripts/no_test_binaries.sh

# Regenerate the version-controlled golden CSVs under results/.
regen-results:
	go run ./cmd/figures -out results

# Scratch outputs only: results/*.csv are version-controlled goldens
# regenerated via `make regen-results`, never deleted here.
clean:
	rm -f test_output.txt bench_output.txt BENCH_5.txt BENCH_6.txt BENCH_8.txt BENCH_10.txt
