#!/usr/bin/env bash
# Artifact-compatible entry point, mirroring the interface of the
# original unXpec artifact (HPCA'22 Artifact Appendix):
#
#   bash run.sh TimingDifference [-e]   # §VI-A  (Figures 7/8)
#   bash run.sh LeakageRate             # §VI-B
#   bash run.sh SecretLeakage [-e]      # §VI-C  (Figures 10/11)
#   bash run.sh NoiseInsensitivity      # §VI-D  (Figure 13)
#   bash run.sh ConstantTime            # §VI-E  (Figure 12)
#   bash run.sh All                     # everything, CSVs into results/
#
# -e enables the eviction-set optimization where applicable.
set -euo pipefail
cd "$(dirname "$0")"

cmd="${1:-All}"
evict=""
if [[ "${2:-}" == "-e" ]]; then
  evict="yes"
fi

case "$cmd" in
  TimingDifference)
    if [[ -n "$evict" ]]; then
      go run ./cmd/figures -fig 8 -plot
    else
      go run ./cmd/figures -fig 7 -plot
    fi
    ;;
  LeakageRate)
    go run ./cmd/figures -fig rate
    ;;
  SecretLeakage)
    if [[ -n "$evict" ]]; then
      go run ./cmd/figures -fig 11 -plot
    else
      go run ./cmd/figures -fig 10 -plot
    fi
    ;;
  NoiseInsensitivity)
    go run ./cmd/figures -fig 13
    ;;
  ConstantTime)
    go run ./cmd/figures -fig 12
    ;;
  All)
    go run ./cmd/figures
    ;;
  *)
    echo "run.sh: unknown experiment '$cmd'" >&2
    echo "choose: TimingDifference|LeakageRate|SecretLeakage|NoiseInsensitivity|ConstantTime|All" >&2
    exit 2
    ;;
esac
