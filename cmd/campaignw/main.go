// Command campaignw is a standalone campaign worker: it leases cells
// from a campaignd coordinator, simulates them under a single-attempt
// harness runner (retries are coordinator-driven), heartbeats while
// running, and reports terminal records. Identical to
// `campaignd worker` — a separate binary so orchestration scripts can
// manage coordinator and workers independently.
//
// See docs/CAMPAIGND.md, including the -chaos-* fault flags.
package main

import (
	"log"
	"os"

	"repro/internal/campaign"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignw: ")
	if err := campaign.WorkerMain(os.Args[1:], "campaignw", log.Printf); err != nil {
		log.Fatal(err)
	}
}
