// Command trace runs one unXpec measurement round with pipeline tracing
// attached and renders the event log and timeline — the paper's
// Figure 1 (T1 speculation start … T6 cleanup done), observable.
//
// Usage:
//
//	trace [-secret 0|1] [-evict] [-loads N] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/unxpec"
)

func main() {
	var (
		secret   = flag.Int("secret", 1, "secret bit to transmit (0 or 1)")
		useEvict = flag.Bool("evict", false, "use eviction sets")
		loads    = flag.Int("loads", 1, "transient loads in the branch")
		timeline = flag.Bool("timeline", true, "render the per-instruction timeline")
	)
	flag.Parse()

	attack, err := unxpec.New(unxpec.Options{
		Seed:            1,
		LoadsInBranch:   *loads,
		UseEvictionSets: *useEvict,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(2)
	}

	// Warm up: one untraced round trains the predictor and caches.
	attack.MeasureOnce(*secret)

	buf := trace.NewBuffer(0)
	attack.Core().SetTracer(buf)
	lat := attack.MeasureOnce(*secret)
	attack.Core().SetTracer(nil)
	res, clean := attack.LastSquashStats()

	fmt.Printf("secret=%d: observed latency %d cycles (resolution %d, cleanup stall %d)\n\n",
		*secret, lat, res, clean)

	fmt.Println("pipeline events of the measurement round (squash & cleanup):")
	sel := trace.NewBuffer(0)
	for _, ev := range buf.Events() {
		switch ev.Kind {
		case "squash", "cleanup", "resolve":
			sel.Event(ev)
		}
	}
	sel.Render(os.Stdout)

	if *timeline {
		fmt.Println("\ninstruction timeline (F=fetch I=issue R=retire), last attack kernel:")
		fmt.Print(tail(buf))
	}
}

// tail renders the timeline of the final (measurement) program only by
// re-filtering events after the last big fetch-PC reset.
func tail(buf *trace.Buffer) string {
	evs := buf.Events()
	// Find the last fetch of PC 0 (program start) and keep from there.
	start := 0
	for i, ev := range evs {
		if ev.Kind == "fetch" && ev.PC == 0 {
			start = i
		}
	}
	out := trace.NewBuffer(0)
	for _, ev := range evs[start:] {
		out.Event(ev)
	}
	return out.Timeline(40)
}
