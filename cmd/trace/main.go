// Command trace runs one unXpec measurement round with pipeline tracing
// attached and renders the event log and timeline — the paper's
// Figure 1 (T1 speculation start … T6 cleanup done), observable.
//
// With -chrome the same events are exported in Chrome trace-event JSON:
// open the file in Perfetto (ui.perfetto.dev) or chrome://tracing to
// scrub through the speculation window visually.
//
// With -spans FILE the command instead renders a distributed-trace
// span file (the JSON array served by a coordinator's /traces.json or
// written by `figures -trace-out`) as an indented causal tree.
//
// Usage:
//
//	trace [-secret 0|1] [-evict] [-loads N] [-timeline] [-chrome FILE]
//	trace -spans FILE [-span-trace ID]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/teletrace"
	"repro/internal/trace"
	"repro/internal/unxpec"
)

func main() {
	var (
		secret    = flag.Int("secret", 1, "secret bit to transmit (0 or 1)")
		useEvict  = flag.Bool("evict", false, "use eviction sets")
		loads     = flag.Int("loads", 1, "transient loads in the branch")
		timeline  = flag.Bool("timeline", true, "render the per-instruction timeline")
		chrome    = flag.String("chrome", "", "write the round as Chrome trace-event JSON (Perfetto / chrome://tracing)")
		spansFile = flag.String("spans", "", "render a distributed-trace span file as a causal tree instead of running a round")
		spanTrace = flag.String("span-trace", "", "with -spans: only render this trace ID")
	)
	flag.Parse()

	if *spansFile != "" {
		if err := renderSpans(*spansFile, *spanTrace); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		return
	}

	attack, err := unxpec.New(unxpec.Options{
		Seed:            1,
		LoadsInBranch:   *loads,
		UseEvictionSets: *useEvict,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(2)
	}

	// Warm up: one untraced round trains the predictor and caches.
	attack.MeasureOnce(*secret)

	buf := trace.NewBuffer(0)
	attack.Core().SetTracer(buf)
	lat := attack.MeasureOnce(*secret)
	attack.Core().SetTracer(nil)
	res, clean := attack.LastSquashStats()

	fmt.Printf("secret=%d: observed latency %d cycles (resolution %d, cleanup stall %d)\n\n",
		*secret, lat, res, clean)

	fmt.Println("pipeline events of the measurement round (squash & cleanup):")
	sel := trace.NewBuffer(0)
	sel.KindFilter = map[cpu.Kind]bool{
		cpu.KindSquash: true, cpu.KindCleanup: true, cpu.KindResolve: true,
	}
	for _, ev := range buf.Events() {
		sel.Event(ev)
	}
	sel.Render(os.Stdout)

	if *timeline {
		fmt.Println("\ninstruction timeline (F=fetch I=issue R=retire), last attack kernel:")
		fmt.Print(tail(buf))
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := trace.WriteChrome(f, buf.Events()); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s — open in ui.perfetto.dev or chrome://tracing\n", *chrome)
	}
}

// renderSpans reads a distributed-trace span file and writes its
// causal trees to stdout, optionally filtered to one trace ID.
func renderSpans(path, traceID string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := teletrace.ReadSpans(f)
	if err != nil {
		return err
	}
	if traceID != "" {
		id, err := teletrace.ParseTraceID(traceID)
		if err != nil {
			return err
		}
		kept := spans[:0]
		for _, d := range spans {
			if d.Trace == id {
				kept = append(kept, d)
			}
		}
		spans = kept
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no matching spans", path)
	}
	return teletrace.WriteTree(os.Stdout, spans)
}

// tail renders the timeline of the final (measurement) program only by
// re-filtering events after the last big fetch-PC reset.
func tail(buf *trace.Buffer) string {
	evs := buf.Events()
	// Find the last fetch of PC 0 (program start) and keep from there.
	start := 0
	for i, ev := range evs {
		if ev.Kind == cpu.KindFetch && ev.PC == 0 {
			start = i
		}
	}
	out := trace.NewBuffer(0)
	for _, ev := range evs[start:] {
		out.Event(ev)
	}
	return out.Timeline(40)
}
