// Command simrun executes one synthetic benchmark on the simulated
// Table I machine under a chosen safe-speculation scheme and prints the
// run statistics — the building block of the Figure 12 study, exposed
// for ad-hoc exploration.
//
// Usage:
//
//	simrun [-w NAME|list|all] [-scheme NAME] [-scale N] [-seed S]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/undo"
	"repro/internal/workload"
)

// runRecord is the machine-readable form of one run.
type runRecord struct {
	Workload       string  `json:"workload"`
	Scheme         string  `json:"scheme"`
	Cycles         uint64  `json:"cycles"`
	Instructions   uint64  `json:"instructions"`
	IPC            float64 `json:"ipc"`
	Squashes       uint64  `json:"squashes"`
	SquashedInst   uint64  `json:"squashed_instructions"`
	CleanupStall   uint64  `json:"cleanup_stall_cycles"`
	MaxStall       int     `json:"max_stall_per_squash"`
	Invalidations  uint64  `json:"invalidations"`
	Restorations   uint64  `json:"restorations"`
	MispredictRate float64 `json:"mispredict_rate"`
}

func main() {
	var (
		wname  = flag.String("w", "list", "workload name, or 'list' / 'all'")
		scheme = flag.String("scheme", "cleanupspec", "scheme: unsafe, cleanupspec, const-N, strict-N, fuzzy-N, invisible")
		scale  = flag.Int("scale", 10000, "dynamic iteration scale")
		seed   = flag.Int64("seed", 1, "seed")
		asJSON = flag.Bool("json", false, "emit machine-readable JSON records")
	)
	flag.Parse()

	suite := workload.ExtendedSuite(*scale, *seed)
	if *wname == "list" {
		fmt.Println("available workloads:")
		for _, w := range suite {
			fmt.Printf("  %-15s %s\n", w.Name, w.Description)
		}
		return
	}

	ran := false
	for _, w := range suite {
		if *wname != "all" && w.Name != *wname {
			continue
		}
		ran = true
		s, err := undo.Parse(*scheme, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(2)
		}
		res, err := workload.RunChecked(w, s, *seed)
		if err != nil {
			// A watchdog trip is a classified timeout with a post-mortem,
			// not a statistics row: averaging a truncated run would be
			// silently wrong.
			var we *cpu.WatchdogError
			if errors.As(err, &we) {
				fmt.Fprintf(os.Stderr, "simrun: %s under %s: %v\n", w.Name, s.Name(), err)
				fmt.Fprintf(os.Stderr, "  post-mortem: cycle=%d retired=%d rob=%d inflight=%d squashes=%d\n",
					we.Post.Cycle, we.Post.Retired, we.Post.ROBOccupancy, we.Post.InflightLoads, we.Post.Squashes)
				os.Exit(harness.ExitTimeout)
			}
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(harness.ExitError)
		}
		st := res.Stats
		us := s.Stats()
		if *asJSON {
			rec := runRecord{
				Workload: w.Name, Scheme: s.Name(),
				Cycles: st.Cycles, Instructions: st.Retired, IPC: st.IPC(),
				Squashes: st.Squashes, SquashedInst: st.SquashedInst,
				CleanupStall: us.TotalStallCycles, MaxStall: us.MaxStall,
				Invalidations: us.TotalInvalidated, Restorations: us.TotalRestored,
				MispredictRate: st.Branch.MispredictRate(),
			}
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "simrun:", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("%s under %s:\n", w.Name, s.Name())
		fmt.Printf("  cycles        %d\n", st.Cycles)
		fmt.Printf("  instructions  %d (IPC %.2f)\n", st.Retired, st.IPC())
		fmt.Printf("  squashes      %d (%d squashed instructions)\n", st.Squashes, st.SquashedInst)
		fmt.Printf("  cleanup stall %d cycles total (max %d/squash, %d invalidations, %d restorations)\n",
			us.TotalStallCycles, us.MaxStall, us.TotalInvalidated, us.TotalRestored)
		fmt.Printf("  branch mispredict rate %.2f%%\n", 100*st.Branch.MispredictRate())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "simrun: unknown workload %q (try -w list)\n", *wname)
		os.Exit(2)
	}
}
