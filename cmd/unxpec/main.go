// Command unxpec runs the unXpec attack end to end on the simulated
// CleanupSpec machine: calibrate a decision threshold, leak a random
// secret, and report accuracy and leakage rate.
//
// Usage:
//
//	unxpec [-bits N] [-evict] [-loads N] [-fn N] [-noise] [-seed S]
//	       [-samples-per-bit N] [-scheme NAME] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/noise"
	"repro/internal/undo"
	"repro/internal/unxpec"
)

func main() {
	var (
		bits      = flag.Int("bits", 1000, "number of secret bits to leak")
		useEvict  = flag.Bool("evict", false, "use eviction sets (Figure 5 optimization)")
		loads     = flag.Int("loads", 1, "transient loads in the branch (1..8)")
		fn        = flag.Int("fn", 1, "memory accesses in the branch condition f(N)")
		noisy     = flag.Bool("noise", true, "enable the system-noise model")
		seed      = flag.Int64("seed", 1, "seed for all stochastic components")
		spb       = flag.Int("samples-per-bit", 1, "measurements per decoded bit (majority vote)")
		schemeArg = flag.String("scheme", "cleanupspec", "defense under attack: cleanupspec, unsafe, const-N, strict-N, fuzzy-N, invisible")
		quiet     = flag.Bool("quiet", false, "only print the summary line")
		tune      = flag.Bool("tune", false, "sweep loads-in-branch and report the capacity-optimal configuration (§V-C)")
	)
	flag.Parse()

	if *tune {
		runTune(*seed, *useEvict)
		return
	}

	scheme, err := undo.Parse(*schemeArg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unxpec:", err)
		os.Exit(2)
	}

	var nz noise.Model = noise.None{}
	if *noisy {
		nz = noise.NewSystem(*seed + 100)
	}

	attack, err := unxpec.New(unxpec.Options{
		LoadsInBranch:   *loads,
		FNAccesses:      *fn,
		UseEvictionSets: *useEvict,
		Scheme:          scheme,
		Noise:           nz,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unxpec:", err)
		os.Exit(2)
	}

	if !*quiet {
		fmt.Printf("target scheme : %s\n", scheme.Name())
		fmt.Printf("eviction sets : %v (%d primed lines)\n", *useEvict, len(attack.PrimeLines()))
		fmt.Printf("calibrating threshold over 300 samples per secret value...\n")
	}
	cal := attack.Calibrate(300)
	if !*quiet {
		fmt.Printf("secret-0 mean %.1f cycles, secret-1 mean %.1f cycles, difference %.1f\n",
			cal.Mean0, cal.Mean1, cal.Diff)
		fmt.Printf("threshold %.0f cycles (training accuracy %.1f%%)\n", cal.Threshold, 100*cal.TrainAcc)
	}

	secret := unxpec.RandomSecret(*bits, *seed+200)
	res := attack.LeakSecret(secret, cal.Threshold, *spb)
	rate := attack.LeakageRate(2.0)

	fmt.Printf("leaked %d bits at %d sample(s)/bit: accuracy %.1f%%, ≈%.0f Kbps on a 2 GHz core\n",
		len(res.Guesses), res.SamplesPerBit, 100*res.Accuracy, rate.BitsPerSecond/1000)

	if cal.Diff < 3 {
		fmt.Println("note: the timing difference is gone — this scheme resists unXpec")
	}
}

// runTune performs the §V-C parameterization sweep.
func runTune(seed int64, useEvict bool) {
	pts, best, err := unxpec.AutoTune(unxpec.Options{
		Seed:            seed,
		UseEvictionSets: useEvict,
		Noise:           noise.NewSystem(seed + 100),
	}, nil, 8, 120)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unxpec:", err)
		os.Exit(2)
	}
	fmt.Printf("%-6s %-12s %-10s %-14s %s\n", "loads", "diff(cyc)", "accuracy", "samples/s", "capacity(bps)")
	for i, p := range pts {
		marker := " "
		if i == best {
			marker = "*"
		}
		fmt.Printf("%-6d %-12.1f %-10.3f %-14.0f %.0f %s\n",
			p.Loads, p.Diff, p.Accuracy, p.SamplesPerSecond, p.CapacityBps, marker)
	}
	fmt.Printf("optimal: %d load(s) in the branch\n", pts[best].Loads)
}
