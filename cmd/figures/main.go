// Command figures regenerates every table and figure of the paper's
// evaluation section and writes the series to results/*.csv alongside a
// console summary with paper-vs-measured values.
//
// Every sweep runs on internal/harness: a bounded worker pool with
// panic containment, watchdog escalation, retry/backoff and an optional
// JSONL journal. A failed cell becomes a recorded gap — the remaining
// figures still render — and an interrupted campaign (-stop-after, or a
// real kill with -journal) resumes with -resume, skipping completed
// cells.
//
// Usage:
//
//	figures [-fig N|table1|rate|crosscore|sensitivity|interference|
//	         minconst|mitigation|all] [-out DIR] [-seed S] [-samples N]
//	        [-bits N] [-scale N] [-plot]
//	        [-jobs N] [-retries N] [-trial-timeout D]
//	        [-journal FILE] [-resume] [-stop-after N] [-inject SPEC]
//	        [-metrics FILE] [-debug-addr ADDR] [-trace-out FILE]
//
// Exit codes follow the harness taxonomy: 0 ok, 1 infrastructure,
// 2 usage, 3 timeout gaps, 4 panic gaps, 5 other gaps, 6 interrupted
// (resumable).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/plot"
	"repro/internal/telemetry"
	"repro/internal/teletrace"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate: 2,3,6,7,8,9,10,11,12,13,table1,rate,crosscore,sensitivity,interference,minconst,mitigation,all")
		out     = flag.String("out", "results", "output directory for CSV series")
		seed    = flag.Int64("seed", 42, "experiment seed")
		samples = flag.Int("samples", 1000, "samples per secret for figures 7/8")
		bits    = flag.Int("bits", 1000, "secret bits for figures 9/10/11")
		scale   = flag.Int("scale", 10000, "workload scale for figure 12")
		ascii   = flag.Bool("plot", false, "also render ASCII charts of the figures")

		jobs      = flag.Int("jobs", 0, "parallel trial workers (0 = GOMAXPROCS)")
		retries   = flag.Int("retries", 0, "attempt budget per cell (0 = harness default of 3)")
		trialTmo  = flag.Duration("trial-timeout", 0, "wall-clock deadline per trial attempt (0 = none)")
		journal   = flag.String("journal", "", "JSONL run journal (enables -resume)")
		resume    = flag.Bool("resume", false, "skip cells with a terminal record in -journal")
		stopAfter = flag.Int("stop-after", 0, "interrupt the campaign after N executed trials (deterministic kill, for CI)")
		inject    = flag.String("inject", "", "fault injections: kind:glob[:attempts],... (kinds: panic, hang)")
		metrics   = flag.String("metrics", "", "write the campaign telemetry rollup to this JSON file")
		debugAddr = flag.String("debug-addr", "", "serve live progress/metrics/pprof on this address (e.g. 127.0.0.1:8070)")
		traceOut  = flag.String("trace-out", "", "write collected trace spans to this JSON file (render with `trace -spans`)")
	)
	flag.Parse()

	injs, err := harness.ParseInjections(*inject)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(harness.ExitUsage)
	}
	var registry *telemetry.Registry
	if *metrics != "" || *debugAddr != "" {
		registry = telemetry.NewRegistry()
	}
	var (
		tracer     *teletrace.Tracer
		traceStore *teletrace.Store
	)
	if *traceOut != "" {
		traceStore = teletrace.NewStore(0)
		tracer = teletrace.New(teletrace.Config{Service: "figures", Store: traceStore})
	}
	campaignStart := time.Now() //simlint:wallclock campaign throughput is genuine wall time
	runner, err := harness.New(harness.Config{
		Workers:      *jobs,
		MaxAttempts:  *retries,
		TrialTimeout: *trialTmo,
		JournalPath:  *journal,
		Resume:       *resume,
		StopAfter:    *stopAfter,
		Injections:   injs,
		Metrics:      registry,
		Tracer:       tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(harness.ExitUsage)
	}
	if *debugAddr != "" {
		dbg, err := runner.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(harness.ExitUsage)
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint: %s (/progress /metrics /debug/vars /debug/pprof/)\n", dbg.URL())
	}

	var (
		reports  []*harness.Report
		infraErr bool
		saveErr  bool
	)
	// note records a sweep's report for the final exit code and prints
	// its gaps; it returns true when every cell produced a value.
	note := func(rep *harness.Report, err error) bool {
		if rep != nil {
			reports = append(reports, rep)
			for _, f := range rep.Failures() {
				fmt.Fprintf(os.Stderr, "  GAP %s [%s, attempt %d]: %s\n", f.Cell, f.Class, f.Attempt, f.Msg)
				if f.Post != nil {
					fmt.Fprintf(os.Stderr, "      post-mortem: cycle=%d retired=%d rob=%d inflight=%d squashes=%d\n",
						f.Post.Cycle, f.Post.Retired, f.Post.ROBOccupancy, f.Post.InflightLoads, f.Post.Squashes)
				}
			}
			if rep.Interrupted {
				fmt.Fprintf(os.Stderr, "  sweep %q interrupted after %d/%d cells — rerun with -resume to finish\n",
					rep.Name, rep.Completed(), len(rep.Outcomes))
			}
			return err == nil && !rep.Interrupted && len(rep.Failures()) == 0
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			infraErr = true
		}
		return err == nil
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }
	csvPath := func(name string) string { return filepath.Join(*out, name+".csv") }
	// save writes atomically and aggregates failures instead of
	// aborting: one unwritable file must not lose the rest of the run.
	save := func(name string, rows [][]string, complete bool) {
		if err := experiments.WriteCSV(csvPath(name), rows); err != nil {
			fmt.Fprintf(os.Stderr, "figures: writing %s: %v\n", name, err)
			saveErr = true
			return
		}
		if complete {
			fmt.Printf("  wrote %s\n", csvPath(name))
		} else {
			fmt.Printf("  wrote %s (PARTIAL — campaign has gaps or was interrupted)\n", csvPath(name))
		}
	}

	if run("table1") {
		fmt.Println("== Table I: experiment setup ==")
		rows := experiments.TableI()
		experiments.PrintTable(os.Stdout, experiments.TableICSV(rows))
		save("table1", experiments.TableICSV(rows), true)
	}

	if run("2") {
		fmt.Println("\n== Figure 2: branch resolution time (simulator) ==")
		pts, rep, err := experiments.Figure2With(runner, *seed)
		ok := note(rep, err)
		summarizeResolution(pts)
		save("figure2", experiments.ResolutionCSV(pts), ok)
	}

	if run("3") {
		fmt.Println("\n== Figure 3: timing difference vs squashed loads (no eviction sets) ==")
		pts, rep, err := experiments.Figure3With(runner, *seed)
		ok := note(rep, err)
		for _, p := range pts {
			fmt.Printf("  %d loads: %.1f cycles\n", p.Loads, p.Diff)
		}
		fmt.Println("  paper: ≈22 cycles at 1 load, shallow growth to ≈25")
		if *ascii {
			fmt.Print(diffPlot("Figure 3 (no eviction sets)", pts))
		}
		save("figure3", experiments.DiffCSV(pts), ok)
	}

	if run("6") {
		fmt.Println("\n== Figure 6: timing difference with eviction sets ==")
		pts, rep, err := experiments.Figure6With(runner, *seed)
		ok := note(rep, err)
		for _, p := range pts {
			fmt.Printf("  %d loads: %.1f cycles\n", p.Loads, p.Diff)
		}
		fmt.Println("  paper: ≈32 cycles at 1 load, growing to ≈64")
		if *ascii {
			fmt.Print(diffPlot("Figure 6 (eviction sets)", pts))
		}
		save("figure6", experiments.DiffCSV(pts), ok)
	}

	if run("7") {
		fmt.Println("\n== Figure 7: latency PDF, no eviction sets ==")
		r, rep, err := experiments.Figure7With(runner, *seed, *samples)
		if note(rep, err) {
			fmt.Printf("  mean0=%.1f mean1=%.1f diff=%.1f threshold=%.0f (paper: diff≈22, threshold 178)\n",
				r.Mean0, r.Mean1, r.Diff, r.Threshold)
			if *ascii {
				fmt.Print(pdfPlot("Figure 7 PDFs (0=secret0, 1=secret1)", r))
			}
			save("figure7", experiments.PDFCSV(r), true)
		}
	}

	if run("8") {
		fmt.Println("\n== Figure 8: latency PDF, with eviction sets ==")
		r, rep, err := experiments.Figure8With(runner, *seed, *samples)
		if note(rep, err) {
			fmt.Printf("  mean0=%.1f mean1=%.1f diff=%.1f threshold=%.0f (paper: diff≈32, threshold 183)\n",
				r.Mean0, r.Mean1, r.Diff, r.Threshold)
			if *ascii {
				fmt.Print(pdfPlot("Figure 8 PDFs (0=secret0, 1=secret1)", r))
			}
			save("figure8", experiments.PDFCSV(r), true)
		}
	}

	if run("9") {
		fmt.Println("\n== Figure 9: random secret bit pattern ==")
		bitsv := experiments.Figure9(*bits, *seed)
		ones := 0
		for _, b := range bitsv {
			ones += b
		}
		fmt.Printf("  %d bits, %d ones\n", len(bitsv), ones)
		save("figure9", experiments.BitsCSV(bitsv), true)
	}

	if run("10") {
		fmt.Println("\n== Figure 10: secret leakage, no eviction sets ==")
		r, rep, err := experiments.Figure10With(runner, *seed, *bits)
		if note(rep, err) {
			fmt.Printf("  accuracy %.1f%% over %d bits, threshold %.0f (paper: 86.7%%)\n",
				100*r.Accuracy, len(r.Guesses), r.Threshold)
			if *ascii {
				fmt.Print(leakPlot("Figure 10 observed latencies (o=secret0, x=secret1)", r))
			}
			save("figure10", experiments.LeakageCSV(r), true)
		}
	}

	if run("11") {
		fmt.Println("\n== Figure 11: secret leakage, with eviction sets ==")
		r, rep, err := experiments.Figure11With(runner, *seed, *bits)
		if note(rep, err) {
			fmt.Printf("  accuracy %.1f%% over %d bits, threshold %.0f (paper: 91.6%%)\n",
				100*r.Accuracy, len(r.Guesses), r.Threshold)
			if *ascii {
				fmt.Print(leakPlot("Figure 11 observed latencies (o=secret0, x=secret1)", r))
			}
			save("figure11", experiments.LeakageCSV(r), true)
		}
	}

	if run("rate") {
		fmt.Println("\n== §VI-B: leakage rate ==")
		for _, es := range []bool{false, true} {
			r := experiments.LeakageRate(*seed, 200, es)
			fmt.Printf("  eviction sets %-5v: %.0f samples/s ≈ %.0f Kbps at 1 sample/bit (paper: ≈140 Kbps)\n",
				es, r.SamplesPerSecond, r.BitsPerSecond/1000)
		}
	}

	if run("12") {
		fmt.Println("\n== Figure 12: constant-time rollback overhead ==")
		r, rep, err := experiments.Figure12With(runner, *seed, *scale)
		ok := note(rep, err)
		experiments.PrintTable(os.Stdout, experiments.Figure12CSV(r))
		fmt.Printf("  paper averages: no-const ≈5%%, const-25 22.4%%, const-65 72.8%%\n")
		if *ascii {
			var labels []string
			var vals []float64
			for _, s := range r.Schemes {
				labels = append(labels, s)
				vals = append(vals, r.MeanOverhead[s])
			}
			fmt.Print(plot.Bars("Figure 12 mean overhead vs unsafe baseline", labels, vals, 50))
		}
		save("figure12", experiments.Figure12CSV(r), ok)
	}

	if run("13") {
		fmt.Println("\n== Figure 13: branch resolution on the host-CPU profile ==")
		pts, rep, err := experiments.Figure13With(runner, *seed)
		ok := note(rep, err)
		summarizeResolution(pts)
		save("figure13", experiments.ResolutionCSV(pts), ok)
	}

	if run("crosscore") {
		fmt.Println("\n== Extension: cross-core probing of the speculation window (§II-B) ==")
		rows, rep, err := experiments.CrossCoreStudyWith(runner, *seed, 800, 350)
		ok := note(rep, err)
		for _, r := range rows {
			verdict := "safe"
			if r.Leaks {
				verdict = "LEAKS"
			}
			fmt.Printf("  %-12s secret=%d: %3d/%3d fast reloads, %2d dummy misses, %d victim squashes → %s\n",
				r.Machine, r.Secret, r.FastReloads, r.Probes, r.DummyMisses, r.VictimSquash, verdict)
		}
		save("crosscore", experiments.CrossCoreCSV(rows), ok)
	}

	if run("sensitivity") {
		fmt.Println("\n== Extension: sensitivity studies ==")
		fmt.Println("noise robustness (single-sample calibration accuracy):")
		nr, rep, err := experiments.NoiseRobustnessWith(runner, *seed, []float64{2, 5, 10, 15, 25}, 150)
		ok := note(rep, err)
		for _, p := range nr {
			fmt.Printf("  σ=%4.1f: accuracy %.3f without ES, %.3f with ES\n",
				p.Sigma, p.Accuracy, p.AccuracyES)
		}
		save("sensitivity_noise", experiments.NoiseCSV(nr), ok)
		fmt.Println("rollback-pipeline sensitivity (single-load diff, eviction sets):")
		lm, rep, err := experiments.LatencyModelSensitivityWith(runner, *seed, []int{8, 16, 24}, []int{5, 10, 20})
		note(rep, err)
		for _, p := range lm {
			fmt.Printf("  invFirst=%2d restoreFirst=%2d: diff %.1f cycles\n",
				p.InvFirst, p.RestoreFirst, p.Diff)
		}
	}

	if run("interference") {
		fmt.Println("\n== Extension: speculative interference ([2]) vs every defense family ==")
		rows, rep, err := experiments.InterferenceStudyWith(runner, *seed, 5)
		ok := note(rep, err)
		for _, r := range rows {
			verdict := "safe"
			if r.Leaks {
				verdict = "LEAKS"
			}
			fmt.Printf("  %-18s MSHR-contention delay %5.1f cycles → %s\n", r.Scheme, r.Diff, verdict)
		}
		save("interference", experiments.InterferenceCSV(rows), ok)
		fmt.Println("  contention channels survive both state hiding and rollback fixes —")
		fmt.Println("  the landscape that motivates the paper's closing call for new designs.")
	}

	if run("minconst") {
		fmt.Println("\n== Extension: minimal safe constant vs attacker strength (§VI-E) ==")
		mc := experiments.MinimalSafeConstant(*seed, 8, 0.01)
		for _, p := range mc {
			fmt.Printf("  %d load(s): worst-case rollback %2d cycles → minimal closing constant %2d (≈%.0f%% overhead)\n",
				p.Loads, p.WorstStall, p.MinSafeConst, 100*p.OverheadAtConst)
		}
		save("minconst", experiments.MinConstCSV(mc), true)
		fmt.Println("  the defender must budget for the strongest attacker — the paper's point")
		fmt.Println("  that choosing the constant is hard (§VI-E).")
	}

	if run("mitigation") {
		fmt.Println("\n== Extension: mitigation study (constant-time vs fuzzy-time) ==")
		pts, rep, err := experiments.MitigationStudyWith(runner, *seed, *scale/4, 16)
		note(rep, err)
		for _, p := range pts {
			fmt.Printf("  %-18s residual channel %.1f cycles, mean overhead %.1f%%\n",
				p.Scheme, p.ResidualDiff, 100*p.MeanOverhead)
		}
	}

	// Wall-clock throughput: simulated cycles per second across the whole
	// campaign, from the cpu_cycles_total rollup. Printed in the summary
	// and recorded as a gauge in the -metrics file, so BENCH-style
	// throughput trajectories are recoverable from campaign journals
	// (docs/PERFORMANCE.md).
	if registry != nil {
		elapsed := time.Since(campaignStart).Seconds() //simlint:wallclock campaign throughput is genuine wall time
		cycles := registry.Counter("cpu_cycles_total", "simulated cycles advanced, including fast-forwarded ones").Value()
		if cycles > 0 && elapsed > 0 {
			rate := float64(cycles) / elapsed
			registry.Gauge("campaign_sim_cycles_per_s", "simulated cycles per wall-clock second over the campaign").Set(rate)
			fmt.Printf("  campaign: %d simulated cycles in %.1fs wall — %.3g cycles/s\n",
				cycles, elapsed, rate)
		}
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, registry); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			saveErr = true
		} else {
			fmt.Printf("  wrote %s (campaign telemetry rollup)\n", *metrics)
		}
	}
	if *traceOut != "" {
		if err := writeSpans(*traceOut, traceStore); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			saveErr = true
		} else {
			fmt.Printf("  wrote %s (trace spans; render with `trace -spans %s`)\n", *traceOut, *traceOut)
		}
	}
	// Surface torn/corrupt journal lines survived during -resume: the
	// affected cells were re-executed, but the operator should know the
	// journal took damage (typically a crash mid-append).
	for _, warn := range runner.JournalWarnings() {
		fmt.Fprintln(os.Stderr, "figures: journal:", warn)
	}
	if err := runner.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "figures: closing journal:", err)
		infraErr = true
	}
	os.Exit(campaignExit(reports, infraErr, saveErr))
}

// writeSpans dumps the collected trace spans as an indented JSON array,
// the format ReadSpans (and so `trace -spans`) consumes.
func writeSpans(path string, st *teletrace.Store) error {
	buf, err := json.MarshalIndent(st.Spans(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// writeMetrics dumps the campaign registry rollup as indented JSON.
func writeMetrics(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSON(f, reg.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// campaignExit folds every sweep report into one exit code: an
// interrupted (resumable) campaign wins, then the worst failure class,
// then infrastructure problems, then 0.
func campaignExit(reports []*harness.Report, infraErr, saveErr bool) int {
	rank := func(code int) int {
		switch code {
		case harness.ExitPanic:
			return 3
		case harness.ExitTimeout:
			return 2
		case harness.ExitError:
			return 1
		}
		return 0
	}
	code := harness.ExitOK
	gaps := 0
	for _, rep := range reports {
		c := rep.ExitCode()
		if c == harness.ExitInterrupted {
			return harness.ExitInterrupted
		}
		if rank(c) > rank(code) {
			code = c
		}
		gaps += len(rep.Failures())
	}
	if gaps > 0 {
		fmt.Fprintf(os.Stderr, "figures: campaign finished with %d gap(s)\n", gaps)
	}
	if code == harness.ExitOK && (infraErr || saveErr) {
		return harness.ExitInfra
	}
	return code
}

// diffPlot renders a Figure 3/6 series as an ASCII line chart.
func diffPlot(title string, pts []experiments.DiffPoint) string {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.Loads)
		ys[i] = p.Diff
	}
	return plot.Curves(title, "squashed loads", "timing difference (cycles)",
		xs, map[rune][]float64{'*': ys}, 64, 12)
}

// pdfPlot renders a Figure 7/8 KDE pair.
func pdfPlot(title string, r experiments.PDFResult) string {
	return plot.Curves(title, "observed latency (cycles)", "density",
		r.Xs, map[rune][]float64{'0': r.Density0, '1': r.Density1}, 90, 14)
}

// leakPlot renders the first 200 bits of a Figure 10/11 run as a
// scatter split by true secret value.
func leakPlot(title string, r experiments.LeakageResult) string {
	classes := map[rune][][2]float64{'o': nil, 'x': nil}
	n := len(r.Latencies)
	if n > 200 {
		n = 200
	}
	for i := 0; i < n; i++ {
		g := 'o'
		if r.Truth[i] == 1 {
			g = 'x'
		}
		classes[g] = append(classes[g], [2]float64{float64(i), float64(r.Latencies[i])})
	}
	return plot.Scatter(title, "bit index", "observed latency (cycles)", classes, 100, 16)
}

func summarizeResolution(pts []experiments.ResolutionPoint) {
	for n := 1; n <= 3; n++ {
		var sum float64
		var count int
		for _, p := range pts {
			if p.FNAccesses == n {
				sum += p.Resolution
				count++
			}
		}
		if count > 0 {
			fmt.Printf("  N=%d: mean resolution %.0f cycles across loads×secrets\n", n, sum/float64(count))
		}
	}
}
