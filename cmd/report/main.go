// Command report reruns the paper's entire evaluation and scores every
// headline quantity against its acceptance band — the repository's
// one-shot artifact evaluation. Exit status is nonzero if any band
// fails, so CI can gate on reproduction fidelity.
//
// Usage:
//
//	report [-quick] [-seed S] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced sample counts (~20 s instead of minutes)")
		seed  = flag.Int64("seed", 42, "experiment seed")
		out   = flag.String("o", "", "also write the markdown report to this file")
	)
	flag.Parse()

	fmt.Println("Rerunning the unXpec evaluation against the paper's bands...")
	bands := experiments.ReproductionReport(*seed, *quick)

	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	failures := 0
	for _, w := range sinks {
		failures = experiments.RenderReport(w, bands)
	}
	if failures > 0 {
		fmt.Printf("\n%d/%d checks FAILED\n", failures, len(bands))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks passed — reproduction is faithful at seed %d\n", len(bands), *seed)
}
