// Command report reruns the paper's entire evaluation and scores every
// headline quantity against its acceptance band — the repository's
// one-shot artifact evaluation. Exit status is nonzero if any band
// fails, so CI can gate on reproduction fidelity. The whole evaluation
// runs with a campaign telemetry registry attached; the machine-level
// rollup (squash counts, rollback-stall mode, cache traffic) is
// rendered as a metrics table after the band table.
//
// Usage:
//
//	report [-quick] [-seed S] [-o FILE] [-no-metrics]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/telemetry"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced sample counts (~20 s instead of minutes)")
		seed      = flag.Int64("seed", 42, "experiment seed")
		out       = flag.String("o", "", "also write the markdown report to this file")
		noMetrics = flag.Bool("no-metrics", false, "skip the campaign metrics table")
	)
	flag.Parse()

	var reg *telemetry.Registry
	if !*noMetrics {
		reg = telemetry.NewRegistry()
	}
	runner, err := harness.New(harness.Config{Metrics: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	fmt.Println("Rerunning the unXpec evaluation against the paper's bands...")
	bands := experiments.ReproductionReportWith(runner, *seed, *quick)

	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	failures := 0
	for _, w := range sinks {
		failures = experiments.RenderReport(w, bands)
		if reg != nil {
			fmt.Fprintf(w, "\n## Campaign telemetry\n\n")
			experiments.RenderMetricsTable(w, reg.Snapshot())
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d/%d checks FAILED\n", failures, len(bands))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks passed — reproduction is faithful at seed %d\n", len(bands), *seed)
}
