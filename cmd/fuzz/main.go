// Command fuzz drives the differential fuzzing subsystem from the
// command line: it generates seeded random programs, checks the
// metamorphic properties (undo-scheme invariance of architectural
// state, rollback completeness, determinism) across the scheme matrix,
// optionally minimizes failures with the delta-debugging shrinker, and
// persists failing witnesses to the corpus directory the test suite
// replays.
//
// Typical runs:
//
//	go run ./cmd/fuzz -n 500 -seed 1              # nightly-style sweep
//	go run ./cmd/fuzz -n 50 -inject skip-rollback # prove the properties have teeth
//	go run ./cmd/fuzz -n 50 -snapshot             # add fork/restore bit-identity to the matrix
//	go run ./cmd/fuzz -n 500 -absint              # absint vs dynamic-detector soundness cross-check
//	go run ./cmd/fuzz -containment                # leak-gadget verdict per scheme
//
// Exit status is 0 when every program passes and non-zero when any
// property diverged (or, with -containment, when the verdicts disagree
// with the paper's taxonomy).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"

	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/undo"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "first generator seed; program i uses seed+i")
		n           = flag.Int("n", 100, "number of random programs to check")
		scheme      = flag.String("scheme", "all", `comma-separated undo scheme specs (e.g. "cleanupspec,const-45"), or "all"`)
		corpus      = flag.String("corpus", "testdata/corpus", "directory failing witnesses are written to (empty disables persistence)")
		minimize    = flag.Bool("minimize", true, "shrink failing programs to minimal witnesses before reporting/saving")
		inject      = flag.String("inject", "", `fault injection: "skip-rollback" or "global-stall" (self-test; a healthy run must then FAIL)`)
		containment = flag.Bool("containment", false, "run the squash-containment leak gadget per scheme instead of random programs")
		trials      = flag.Int("trials", 20, "trials per secret value for -containment")
		snapshot    = flag.Bool("snapshot", false, "also check snapshot invariance: fork-then-run must be bit-identical to fresh-run at fuzzed fork cycles")
		forks       = flag.Int("forks", 3, "fork cycles per scheme for -snapshot")
		absint      = flag.Bool("absint", false, "also cross-check the abstract taint interpreter against the dynamic leak detector, with secret-gadget blocks mixed into generated programs")
	)
	flag.Parse()

	schemes := fuzz.AllSchemes
	if *scheme != "all" && *scheme != "" {
		schemes = strings.Split(*scheme, ",")
	}
	// Reject bad specs before the sweep: a scheme typo must be a usage
	// error, not 500 "divergences" minimized into junk corpus entries.
	for _, s := range schemes {
		if _, err := undo.Parse(s, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	injection, err := fuzz.ParseInjection(*inject)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := fuzz.DefaultConfig()
	if *absint {
		// Secret-gadget blocks give the static/dynamic cross-check real
		// taint flows to disagree about; the default weight of zero
		// keeps historical seeds reproducing their exact programs.
		cfg.Weights.Secret = 3
	}
	g := fuzz.MustNew(cfg)
	if *containment {
		os.Exit(runContainment(g, schemes, *trials))
	}
	snapForks := 0
	if *snapshot {
		snapForks = *forks
	}
	os.Exit(runSweep(g, schemes, *seed, *n, *corpus, *minimize, injection, snapForks, *absint))
}

// saveTelemetry replays a failing witness on instrumented machines and
// writes the per-scheme telemetry snapshot next to the .prog file. Best
// effort: the profile is diagnostic garnish, so a failed replay warns
// instead of changing the exit code.
func saveTelemetry(g *fuzz.Generator, corpus string, w *fuzz.Witness, opts fuzz.Options) {
	path, err := fuzz.ReplayTelemetry(g, corpus, w, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzz: witness telemetry:", err)
		return
	}
	fmt.Printf("  telemetry saved to %s\n", path)
}

// checkContained runs the property checks with panic containment, so
// one crashing program is a reported witness instead of a dead sweep.
// Snapshot invariance joins the matrix when opts.SnapshotForks > 0.
func checkContained(g *fuzz.Generator, prog *isa.Program, opts fuzz.Options, absint bool) (divs []fuzz.Divergence, perr error) {
	defer func() {
		if p := recover(); p != nil {
			perr = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	divs = g.CheckProgram(prog, opts)
	divs = append(divs, g.CheckDeterminism(prog, opts)...)
	if opts.SnapshotForks > 0 {
		divs = append(divs, g.CheckSnapshotInvariance(prog, opts)...)
	}
	if absint {
		divs = append(divs, g.CheckAbsintSoundness(prog, opts)...)
	}
	return divs, nil
}

// runSweep checks n seeded random programs and returns the exit code.
func runSweep(g *fuzz.Generator, schemes []string, seed int64, n int, corpus string, minimize bool, injection fuzz.Injection, snapForks int, absint bool) int {
	failures, panics := 0, 0
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		opts := fuzz.Options{
			Schemes:       schemes,
			MemSeed:       s + 1000,
			MachineSeed:   s,
			Wrap:          injection.Wrapper(),
			SnapshotForks: snapForks,
		}
		prog := g.Program(s)
		divs, perr := checkContained(g, prog, opts, absint)
		if perr != nil {
			panics++
			fmt.Printf("seed %d: PANIC contained:\n%v\n", s, perr)
			if corpus != "" {
				w := &fuzz.Witness{
					Name:        fmt.Sprintf("seed%d-panic", s),
					Reason:      perr.Error(),
					Seed:        s,
					MemSeed:     opts.MemSeed,
					MachineSeed: opts.MachineSeed,
					Prog:        prog,
				}
				if path, err := fuzz.SaveWitness(corpus, w); err == nil {
					fmt.Printf("  witness saved to %s\n", path)
				} else {
					fmt.Fprintln(os.Stderr, err)
				}
				saveTelemetry(g, corpus, w, opts)
			}
			continue
		}
		if len(divs) == 0 {
			continue
		}
		failures++
		fmt.Printf("seed %d: %d divergence(s)\n", s, len(divs))
		for _, d := range divs {
			fmt.Printf("  %s\n", d.String())
		}

		witness := prog
		if minimize {
			// Pin the shrink predicate to the properties the original
			// program violated, so reduction can't wander into an
			// unrelated failure (e.g. shrinking a rollback bug into an
			// infinite loop that merely times out the reference).
			origProps := make(map[string]bool, len(divs))
			for _, d := range divs {
				origProps[d.Property] = true
			}
			witness = fuzz.Shrink(prog, func(p *isa.Program) bool {
				all := g.CheckProgram(p, opts)
				// The determinism check runs the core twice per scheme,
				// which is expensive on degenerate candidates (infinite
				// loops run to the watchdog) — only pay for it when
				// determinism is what originally broke.
				if origProps["determinism"] {
					all = append(all, g.CheckDeterminism(p, opts)...)
				}
				if origProps["snapshot"] {
					all = append(all, g.CheckSnapshotInvariance(p, opts)...)
				}
				if origProps["absint-soundness"] || origProps["absint-witness"] {
					all = append(all, g.CheckAbsintSoundness(p, opts)...)
				}
				for _, d := range all {
					if origProps[d.Property] {
						return true
					}
				}
				return false
			})
			fmt.Printf("  minimized %d → %d instructions\n", prog.Len(), witness.Len())
		}
		if corpus != "" {
			reasons := make([]string, 0, len(divs))
			for _, d := range divs {
				reasons = append(reasons, d.String())
			}
			w := &fuzz.Witness{
				Name:        fmt.Sprintf("seed%d", s),
				Reason:      strings.Join(reasons, "\n"),
				Seed:        s,
				MemSeed:     opts.MemSeed,
				MachineSeed: opts.MachineSeed,
				Prog:        witness,
			}
			path, err := fuzz.SaveWitness(corpus, w)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			fmt.Printf("  witness saved to %s\n", path)
			saveTelemetry(g, corpus, w, opts)
		}
	}
	fmt.Printf("checked %d programs across %d scheme(s): %d failing, %d panicking\n",
		n, len(schemes), failures, panics)
	if panics > 0 {
		return harness.ExitPanic
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// runContainment prints the leak-gadget verdict per scheme and returns
// non-zero when the verdicts contradict the paper's taxonomy: the
// unsafe baseline must leak, and Undo-style rollback must leak through
// victim time (the unXpec channel) even where the probe is contained.
func runContainment(g *fuzz.Generator, schemes []string, trials int) int {
	bad := 0
	for _, spec := range schemes {
		rep, err := g.CheckContainment(spec, trials, fuzz.Options{MemSeed: 42})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		verdict := "contained"
		if rep.Leaks(0.7) {
			verdict = "LEAKS"
		}
		fmt.Printf("%-12s %-9s %s\n", spec, verdict, rep.String())
		switch spec {
		case "unsafe":
			if rep.ProbeAccuracy < 0.9 {
				fmt.Printf("  UNEXPECTED: unsafe baseline should leak via the probe\n")
				bad++
			}
		case "cleanupspec":
			if rep.VictimAccuracy < 0.9 {
				fmt.Printf("  UNEXPECTED: Undo rollback should leak via victim time (unXpec)\n")
				bad++
			}
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}
