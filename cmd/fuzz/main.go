// Command fuzz drives the differential fuzzing subsystem from the
// command line: it generates seeded random programs, checks the
// metamorphic properties (undo-scheme invariance of architectural
// state, rollback completeness, determinism) across the scheme matrix,
// optionally minimizes failures with the delta-debugging shrinker, and
// persists failing witnesses to the corpus directory the test suite
// replays.
//
// Typical runs:
//
//	go run ./cmd/fuzz -n 500 -seed 1              # nightly-style sweep
//	go run ./cmd/fuzz -n 500 -jobs 0              # same sweep, all cores
//	go run ./cmd/fuzz -n 50 -inject skip-rollback # prove the properties have teeth
//	go run ./cmd/fuzz -n 50 -snapshot             # add fork/restore bit-identity to the matrix
//	go run ./cmd/fuzz -n 500 -absint              # absint vs dynamic-detector soundness cross-check
//	go run ./cmd/fuzz -containment                # leak-gadget verdict per scheme
//
// Exit status is 0 when every program passes and non-zero when any
// property diverged (or, with -containment, when the verdicts disagree
// with the paper's taxonomy).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/undo"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "first generator seed; program i uses seed+i")
		n           = flag.Int("n", 100, "number of random programs to check")
		scheme      = flag.String("scheme", "all", `comma-separated undo scheme specs (e.g. "cleanupspec,const-45"), or "all"`)
		corpus      = flag.String("corpus", "testdata/corpus", "directory failing witnesses are written to (empty disables persistence)")
		minimize    = flag.Bool("minimize", true, "shrink failing programs to minimal witnesses before reporting/saving")
		inject      = flag.String("inject", "", `fault injection: "skip-rollback" or "global-stall" (self-test; a healthy run must then FAIL)`)
		containment = flag.Bool("containment", false, "run the squash-containment leak gadget per scheme instead of random programs")
		trials      = flag.Int("trials", 20, "trials per secret value for -containment")
		snapshot    = flag.Bool("snapshot", false, "also check snapshot invariance: fork-then-run must be bit-identical to fresh-run at fuzzed fork cycles")
		forks       = flag.Int("forks", 3, "fork cycles per scheme for -snapshot")
		absint      = flag.Bool("absint", false, "also cross-check the abstract taint interpreter against the dynamic leak detector, with secret-gadget blocks mixed into generated programs")
		jobs        = flag.Int("jobs", 1, "parallel sweep workers (0 = GOMAXPROCS); output stays in seed order at any width")
	)
	flag.Parse()

	schemes := fuzz.AllSchemes
	if *scheme != "all" && *scheme != "" {
		schemes = strings.Split(*scheme, ",")
	}
	// Reject bad specs before the sweep: a scheme typo must be a usage
	// error, not 500 "divergences" minimized into junk corpus entries.
	for _, s := range schemes {
		if _, err := undo.Parse(s, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	injection, err := fuzz.ParseInjection(*inject)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := fuzz.DefaultConfig()
	if *absint {
		// Secret-gadget blocks give the static/dynamic cross-check real
		// taint flows to disagree about; the default weight of zero
		// keeps historical seeds reproducing their exact programs.
		cfg.Weights.Secret = 3
	}
	if *containment {
		os.Exit(runContainment(fuzz.MustNew(cfg), schemes, *trials))
	}
	snapForks := 0
	if *snapshot {
		snapForks = *forks
	}
	os.Exit(runSweep(cfg, schemes, *seed, *n, *corpus, *minimize, injection, snapForks, *absint, *jobs))
}

// saveTelemetry replays a failing witness on instrumented machines and
// writes the per-scheme telemetry snapshot next to the .prog file. Best
// effort: the profile is diagnostic garnish, so a failed replay warns
// instead of changing the exit code.
func saveTelemetry(out io.Writer, g *fuzz.Generator, corpus string, w *fuzz.Witness, opts fuzz.Options) {
	path, err := fuzz.ReplayTelemetry(g, corpus, w, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzz: witness telemetry:", err)
		return
	}
	fmt.Fprintf(out, "  telemetry saved to %s\n", path)
}

// checkContained runs the property checks with panic containment, so
// one crashing program is a reported witness instead of a dead sweep.
// Snapshot invariance joins the matrix when opts.SnapshotForks > 0.
func checkContained(g *fuzz.Generator, prog *isa.Program, opts fuzz.Options, absint bool) (divs []fuzz.Divergence, perr error) {
	defer func() {
		if p := recover(); p != nil {
			perr = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	divs = g.CheckProgram(prog, opts)
	divs = append(divs, g.CheckDeterminism(prog, opts)...)
	if opts.SnapshotForks > 0 {
		divs = append(divs, g.CheckSnapshotInvariance(prog, opts)...)
	}
	if absint {
		divs = append(divs, g.CheckAbsintSoundness(prog, opts)...)
	}
	return divs, nil
}

// seedResult is one seed's buffered outcome. Stdout lines are staged
// in out and flushed strictly in seed order, so the sweep's output is
// byte-identical at every -jobs width.
type seedResult struct {
	out      bytes.Buffer
	failed   bool
	panicked bool
	saveErr  error // witness persistence failure (exit 2)
}

// sweepConfig is the per-sweep immutable parameter block every worker
// reads.
type sweepConfig struct {
	schemes   []string
	corpus    string
	minimize  bool
	injection fuzz.Injection
	snapForks int
	absint    bool
}

// runSweep checks n seeded random programs across the job pool and
// returns the exit code. Program i is a pure function of seed+i — the
// generator derives everything from the seed — so the sweep's findings
// and its stdout are identical no matter how many workers claim seeds.
func runSweep(cfg fuzz.Config, schemes []string, seed int64, n int, corpus string, minimize bool, injection fuzz.Injection, snapForks int, absint bool, jobs int) int {
	sc := sweepConfig{
		schemes: schemes, corpus: corpus, minimize: minimize,
		injection: injection, snapForks: snapForks, absint: absint,
	}
	pool := engine.New(engine.Config{Workers: jobs})
	// Each worker owns a Generator: Program(seed) is stateless per call,
	// so per-worker generators produce the same programs a single shared
	// one would, without cross-worker locking.
	gens := make([]*fuzz.Generator, pool.Size())

	results := make([]*seedResult, n)
	var mu sync.Mutex
	flushed := 0
	pool.Run(n, func(w *engine.Worker, i int) {
		g := gens[w.ID]
		if g == nil {
			g = fuzz.MustNew(cfg)
			gens[w.ID] = g
		}
		r := checkSeed(g, seed+int64(i), sc)
		mu.Lock()
		results[i] = r
		// Flush the contiguous completed prefix so output streams during
		// long sweeps yet stays in seed order.
		for flushed < n && results[flushed] != nil {
			os.Stdout.Write(results[flushed].out.Bytes())
			results[flushed].out = bytes.Buffer{}
			flushed++
		}
		mu.Unlock()
	})

	failures, panics := 0, 0
	exit := 0
	for _, r := range results {
		if r.failed {
			failures++
		}
		if r.panicked {
			panics++
		}
		if r.saveErr != nil && exit == 0 {
			fmt.Fprintln(os.Stderr, r.saveErr)
			exit = 2
		}
	}
	fmt.Printf("checked %d programs across %d scheme(s): %d failing, %d panicking\n",
		n, len(schemes), failures, panics)
	if exit != 0 {
		return exit
	}
	if panics > 0 {
		return harness.ExitPanic
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// checkSeed checks one seeded program, buffering its report lines.
func checkSeed(g *fuzz.Generator, s int64, sc sweepConfig) *seedResult {
	r := &seedResult{}
	opts := fuzz.Options{
		Schemes:       sc.schemes,
		MemSeed:       s + 1000,
		MachineSeed:   s,
		Wrap:          sc.injection.Wrapper(),
		SnapshotForks: sc.snapForks,
	}
	prog := g.Program(s)
	divs, perr := checkContained(g, prog, opts, sc.absint)
	if perr != nil {
		r.panicked = true
		fmt.Fprintf(&r.out, "seed %d: PANIC contained:\n%v\n", s, perr)
		if sc.corpus != "" {
			w := &fuzz.Witness{
				Name:        fmt.Sprintf("seed%d-panic", s),
				Reason:      perr.Error(),
				Seed:        s,
				MemSeed:     opts.MemSeed,
				MachineSeed: opts.MachineSeed,
				Prog:        prog,
			}
			if path, err := fuzz.SaveWitness(sc.corpus, w); err == nil {
				fmt.Fprintf(&r.out, "  witness saved to %s\n", path)
			} else {
				fmt.Fprintln(os.Stderr, err)
			}
			saveTelemetry(&r.out, g, sc.corpus, w, opts)
		}
		return r
	}
	if len(divs) == 0 {
		return r
	}
	r.failed = true
	fmt.Fprintf(&r.out, "seed %d: %d divergence(s)\n", s, len(divs))
	for _, d := range divs {
		fmt.Fprintf(&r.out, "  %s\n", d.String())
	}

	witness := prog
	if sc.minimize {
		// Pin the shrink predicate to the properties the original
		// program violated, so reduction can't wander into an
		// unrelated failure (e.g. shrinking a rollback bug into an
		// infinite loop that merely times out the reference).
		origProps := make(map[string]bool, len(divs))
		for _, d := range divs {
			origProps[d.Property] = true
		}
		witness = fuzz.Shrink(prog, func(p *isa.Program) bool {
			all := g.CheckProgram(p, opts)
			// The determinism check runs the core twice per scheme,
			// which is expensive on degenerate candidates (infinite
			// loops run to the watchdog) — only pay for it when
			// determinism is what originally broke.
			if origProps["determinism"] {
				all = append(all, g.CheckDeterminism(p, opts)...)
			}
			if origProps["snapshot"] {
				all = append(all, g.CheckSnapshotInvariance(p, opts)...)
			}
			if origProps["absint-soundness"] || origProps["absint-witness"] {
				all = append(all, g.CheckAbsintSoundness(p, opts)...)
			}
			for _, d := range all {
				if origProps[d.Property] {
					return true
				}
			}
			return false
		})
		fmt.Fprintf(&r.out, "  minimized %d → %d instructions\n", prog.Len(), witness.Len())
	}
	if sc.corpus != "" {
		reasons := make([]string, 0, len(divs))
		for _, d := range divs {
			reasons = append(reasons, d.String())
		}
		w := &fuzz.Witness{
			Name:        fmt.Sprintf("seed%d", s),
			Reason:      strings.Join(reasons, "\n"),
			Seed:        s,
			MemSeed:     opts.MemSeed,
			MachineSeed: opts.MachineSeed,
			Prog:        witness,
		}
		path, err := fuzz.SaveWitness(sc.corpus, w)
		if err != nil {
			r.saveErr = err
			return r
		}
		fmt.Fprintf(&r.out, "  witness saved to %s\n", path)
		saveTelemetry(&r.out, g, sc.corpus, w, opts)
	}
	return r
}

// runContainment prints the leak-gadget verdict per scheme and returns
// non-zero when the verdicts contradict the paper's taxonomy: the
// unsafe baseline must leak, and Undo-style rollback must leak through
// victim time (the unXpec channel) even where the probe is contained.
func runContainment(g *fuzz.Generator, schemes []string, trials int) int {
	bad := 0
	for _, spec := range schemes {
		rep, err := g.CheckContainment(spec, trials, fuzz.Options{MemSeed: 42})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		verdict := "contained"
		if rep.Leaks(0.7) {
			verdict = "LEAKS"
		}
		fmt.Printf("%-12s %-9s %s\n", spec, verdict, rep.String())
		switch spec {
		case "unsafe":
			if rep.ProbeAccuracy < 0.9 {
				fmt.Printf("  UNEXPECTED: unsafe baseline should leak via the probe\n")
				bad++
			}
		case "cleanupspec":
			if rep.VictimAccuracy < 0.9 {
				fmt.Printf("  UNEXPECTED: Undo rollback should leak via victim time (unXpec)\n")
				bad++
			}
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}
