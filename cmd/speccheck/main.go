// Command speccheck runs the abstract speculative-taint interpreter
// (internal/absint) over ISA programs and reports, per program, whether
// secret data can reach a timing channel — architecturally or inside a
// speculative window — together with a witness path naming the
// transmitting instruction.
//
// Typical runs:
//
//	go run ./cmd/speccheck prog.prog             # one program: verdict + witness
//	go run ./cmd/speccheck -v prog.prog          # ... with the full witness path
//	go run ./cmd/speccheck -corpus testdata/corpus
//	go run ./cmd/speccheck -gadgets              # built-in spectre suite vs ground truth
//	go run ./cmd/speccheck -gadgets -cross       # ... plus the dynamic-detector cross-check
//
// Exit status: with file arguments, 1 if any program Leaks (the tool
// is a checker); with -gadgets or -cross, 1 on any ground-truth
// mismatch or soundness divergence; 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/absint"
	"repro/internal/fuzz"
	"repro/internal/spectre"
)

func main() {
	var (
		corpusDir = flag.String("corpus", "", "analyze every .prog witness in this directory")
		gadgets   = flag.Bool("gadgets", false, "analyze the built-in spectre gadget suite against its declared ground truth")
		cross     = flag.Bool("cross", false, "cross-check every NoLeak verdict against the cycle-accurate dynamic leak detector")
		verbose   = flag.Bool("v", false, "print the full witness path, not just the headline")
	)
	flag.Parse()

	g := fuzz.MustNew(fuzz.DefaultConfig())
	switch {
	case *gadgets:
		os.Exit(runGadgets(g, *cross, *verbose))
	case *corpusDir != "":
		os.Exit(runCorpus(g, *corpusDir, *cross, *verbose))
	case flag.NArg() > 0:
		os.Exit(runFiles(g, flag.Args(), *cross, *verbose))
	default:
		fmt.Fprintln(os.Stderr, "speccheck: nothing to check (pass files, -corpus or -gadgets)")
		flag.Usage()
		os.Exit(2)
	}
}

// report prints one program's verdict line plus optional witness body.
func report(name string, res absint.Result, verbose bool) {
	fmt.Printf("%-28s %s\n", name, res.Summary())
	if verbose && len(res.Findings) > 0 {
		for _, line := range strings.Split(strings.TrimRight(res.Findings[0].Render(), "\n"), "\n") {
			fmt.Printf("    %s\n", line)
		}
	}
}

// crossCheck runs the soundness/witness cross-check and prints any
// divergence; it returns how many there were.
func crossCheck(g *fuzz.Generator, name string, w *fuzz.Witness) int {
	o := fuzz.Options{MemSeed: w.MemSeed, MachineSeed: w.MachineSeed}
	divs := g.CheckAbsintSoundness(w.Prog, o)
	for _, d := range divs {
		fmt.Printf("    DIVERGENCE %s\n", d.String())
	}
	return len(divs)
}

func runFiles(g *fuzz.Generator, paths []string, cross, verbose bool) int {
	leaks, bad := 0, 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "speccheck:", err)
			return 2
		}
		name := strings.TrimSuffix(filepath.Base(path), fuzz.WitnessExt)
		w, err := fuzz.ParseWitness(name, data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "speccheck:", err)
			return 2
		}
		res := g.Analyze(w.Prog)
		report(name, res, verbose)
		if res.Verdict == absint.Leaks {
			leaks++
		}
		if cross {
			bad += crossCheck(g, name, w)
		}
	}
	if bad > 0 || leaks > 0 {
		return 1
	}
	return 0
}

// runCorpus reports every witness in dir. Leaky corpus entries (the
// gadget suite) are expected material, so only cross-check divergences
// fail the run.
func runCorpus(g *fuzz.Generator, dir string, cross, verbose bool) int {
	ws, err := fuzz.LoadCorpus(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speccheck:", err)
		return 2
	}
	if len(ws) == 0 {
		fmt.Fprintf(os.Stderr, "speccheck: no %s witnesses in %s\n", fuzz.WitnessExt, dir)
		return 2
	}
	counts := map[absint.Verdict]int{}
	bad := 0
	for _, w := range ws {
		res := g.Analyze(w.Prog)
		counts[res.Verdict]++
		report(w.Name, res, verbose)
		if cross {
			bad += crossCheck(g, w.Name, w)
		}
	}
	fmt.Printf("%d witnesses: %d Leaks, %d NoLeak, %d Unknown\n",
		len(ws), counts[absint.Leaks], counts[absint.NoLeak], counts[absint.Unknown])
	if bad > 0 {
		return 1
	}
	return 0
}

// runGadgets checks the spectre suite against its declared ground
// truth: leaky gadgets must be flagged, the benign control proved.
func runGadgets(g *fuzz.Generator, cross, verbose bool) int {
	bad := 0
	for _, gd := range spectre.Gadgets() {
		res := g.Analyze(gd.Prog)
		report(gd.Name, res, verbose)
		switch {
		case gd.Leaky && res.Verdict == absint.NoLeak:
			fmt.Printf("    UNSOUND: gadget is leaky, verdict NoLeak\n")
			bad++
		case !gd.Leaky && res.Verdict != absint.NoLeak:
			fmt.Printf("    IMPRECISE: benign control not proved (verdict %s)\n", res.Verdict)
			bad++
		}
		if cross {
			w := &fuzz.Witness{Name: gd.Name, MemSeed: 71, MachineSeed: 72, Prog: gd.Prog}
			bad += crossCheck(g, gd.Name, w)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}
