// Command campaignd is the distributed campaign coordinator: it shards
// figure sweeps into content-addressed cells, serves them to worker
// processes over a lease-based work-stealing queue, and aggregates the
// results into the exact CSV a single-process `figures` run writes.
//
// Subcommands:
//
//	campaignd serve  -addr :8080 -journal campaign.jsonl -resume
//	campaignd submit -connect http://host:8080 -sweep figure3
//	campaignd await  -connect http://host:8080 -campaign cID -csv-out figure3.csv
//	campaignd worker -connect http://host:8080 -name w1
//
// See docs/CAMPAIGND.md for the HTTP API and the chaos harness.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/teletrace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignd: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(os.Args[2:])
	case "submit":
		err = submitCmd(os.Args[2:])
	case "await":
		err = awaitCmd(os.Args[2:])
	case "worker":
		err = workerCmd(os.Args[2:], "campaignd-worker")
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "campaignd: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: campaignd <serve|submit|await|worker> [flags]

serve   run the coordinator (journal + lease queue + HTTP API)
submit  register a sweep campaign (idempotent)
await   poll a campaign until complete and fetch its results CSV
worker  run a worker loop against a coordinator (also: cmd/campaignw)

Run 'campaignd <subcommand> -h' for flags.
`)
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the actual listen address to this file (for scripts)")
	journal := fs.String("journal", "", "JSONL journal path (empty: no durability)")
	resume := fs.Bool("resume", false, "seed the result cache from the journal at boot")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "worker lease TTL (heartbeats extend it)")
	maxAttempts := fs.Int("max-attempts", 5, "per-cell lease budget before quarantine")
	backoffBase := fs.Duration("backoff-base", 500*time.Millisecond, "first requeue backoff")
	backoffMax := fs.Duration("backoff-max", 15*time.Second, "requeue backoff cap")
	cacheSize := fs.Int("cache-size", 0, "result cache bound (0: unbounded)")
	readRate := fs.Float64("read-rate", 0, "read endpoint rate limit, req/s (0: unlimited)")
	readBurst := fs.Int("read-burst", 10, "read rate limiter burst")
	readWidth := fs.Int("read-width", 8, "concurrent read handlers")
	readQueue := fs.Int("read-queue", 16, "bounded read wait queue (overflow sheds 503)")
	aggTTL := fs.Duration("agg-ttl", time.Second, "/progress aggregate cache TTL (stale-but-fast)")
	traceOn := fs.Bool("trace", true, "distributed tracing: cell root spans, X-Trace-Context propagation, /traces explorer")
	traceCap := fs.Int("trace-cap", teletrace.DefaultStoreCap, "span store bound (FIFO eviction)")
	fs.Parse(args)

	var tracer *teletrace.Tracer
	if *traceOn {
		tracer = teletrace.New(teletrace.Config{
			Service: "campaignd",
			Store:   teletrace.NewStore(*traceCap),
		})
	}
	srv, err := campaign.NewServer(campaign.Config{
		JournalPath: *journal,
		Resume:      *resume,
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		BackoffBase: *backoffBase,
		BackoffMax:  *backoffMax,
		CacheSize:   *cacheSize,
		ReadRate:    *readRate,
		ReadBurst:   *readBurst,
		ReadWidth:   *readWidth,
		ReadQueue:   *readQueue,
		AggTTL:      *aggTTL,
		Tracer:      tracer,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	log.Printf("serving on http://%s", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	return http.Serve(ln, srv.Handler())
}

func submitCmd(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	connect := fs.String("connect", "http://127.0.0.1:8080", "coordinator base URL")
	sweep := fs.String("sweep", "", "sweep name (figure2..figure13; see 'figures -list')")
	seed := fs.Int64("seed", 42, "base RNG seed")
	samples := fs.Int("samples", 1000, "samples per secret (figures 7/8)")
	bits := fs.Int("bits", 1000, "secret bits (figures 10/11)")
	scale := fs.Int("scale", 10000, "workload scale (figure 12)")
	fs.Parse(args)
	if *sweep == "" {
		return fmt.Errorf("submit: -sweep is required")
	}
	body := campaign.SubmitRequest{
		Sweep:  *sweep,
		Params: experiments.Params{Seed: *seed, Samples: *samples, Bits: *bits, Scale: *scale},
	}
	var st campaign.StatusResponse
	if err := postJSON(*connect+"/v1/campaigns", body, &st); err != nil {
		return err
	}
	log.Printf("campaign %s: %d cells (%d cached, %d done, %d pending)", st.ID, st.Total, st.Cached, st.Done, st.Pending)
	fmt.Println(st.ID)
	return nil
}

func awaitCmd(args []string) error {
	fs := flag.NewFlagSet("await", flag.ExitOnError)
	connect := fs.String("connect", "http://127.0.0.1:8080", "coordinator base URL")
	id := fs.String("campaign", "", "campaign ID (from submit)")
	csvOut := fs.String("csv-out", "", "write the results CSV here (default: stdout)")
	timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long")
	poll := fs.Duration("poll", 250*time.Millisecond, "status poll interval")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("await: -campaign is required")
	}
	deadline := time.Now().Add(*timeout) //simlint:wallclock await polls a live service
	for {
		var st campaign.StatusResponse
		if err := getJSON(*connect+"/v1/campaigns/"+*id, &st); err != nil {
			log.Printf("status poll: %v (retrying)", err)
		} else if st.Complete {
			if st.Quarantined > 0 {
				log.Printf("warning: %d cell(s) quarantined; CSV has recorded gaps", st.Quarantined)
			}
			break
		} else {
			log.Printf("campaign %s: %d/%d done (%d leased, %d pending)", st.ID, st.Done, st.Total, st.Leased, st.Pending)
		}
		if time.Now().After(deadline) { //simlint:wallclock await polls a live service
			return fmt.Errorf("await: campaign %s not complete after %s", *id, *timeout)
		}
		time.Sleep(*poll)
	}
	resp, err := http.Get(*connect + "/v1/campaigns/" + *id + "/results.csv")
	if err != nil {
		return fmt.Errorf("fetching results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching results: unexpected status %s", resp.Status)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading results: %w", err)
	}
	if *csvOut == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*csvOut, buf, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%d bytes)", *csvOut, len(buf))
	return nil
}

// workerCmd delegates to the shared flag set (campaign.WorkerMain) so
// `campaignd worker` and cmd/campaignw spell identical flags.
func workerCmd(args []string, defaultName string) error {
	return campaign.WorkerMain(args, defaultName, log.Printf)
}

func postJSON(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("encoding request: %w", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
